// Package pipeline is the staged Code Phage transfer engine. It runs
// the paper's control flow as an explicit sequence of typed stages
// over a shared TransferContext:
//
//	Select -> Discover -> AnalyzePoints -> Translate -> Insert -> Validate -> Rescan
//
// Select resolves transfers that name no donor by ranking candidates
// from a donor knowledge base (the DonorSelector interface;
// internal/corpus implements it over a persistent index), Discover
// excises candidate checks from the donor (§3.2),
// AnalyzePoints finds the recipient insertion points for one check
// (§3.3), Translate rewrites the check into the recipient name space
// at every stable point (Figures 6 and 7), Insert+Validate splice each
// generated patch into the source and replay the error input and the
// regression suite (§3.4), and Rescan reruns DIODE on the patched
// build for residual errors. Candidate validation fans out across a
// bounded worker pool; the winner is merged deterministically
// (rank-then-reduce: the first-ranked validating candidate wins, never
// the first to finish), so parallel runs return byte-identical results
// to sequential ones. Recipient compiles go through a content-keyed
// module cache, and every symbolic query — translation, overflow
// proofs, rescans — runs through one shared memoizing constraint
// service (internal/smt.Service) on a private per-transfer session,
// so concurrent work shares verdicts without sharing mutable state.
package pipeline

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"codephage/internal/bitvec"
	"codephage/internal/compile"
	"codephage/internal/diode"
	"codephage/internal/hachoir"
	"codephage/internal/ir"
	"codephage/internal/patch"
	"codephage/internal/smt"
	"codephage/internal/telemetry"
	"codephage/internal/vm"
)

// Options tunes a transfer.
type Options struct {
	// ExitMode selects the firing behaviour of generated patches.
	ExitMode ExitMode
	// MaxChecks bounds the candidate checks tried per round (0 = all).
	MaxChecks int
	// MaxRounds bounds the recursive residual-error elimination.
	MaxRounds int
	// MaxSteps bounds each VM run.
	MaxSteps int64
	// NoSimplify disables the Figure 5 rewrite rules (ablation).
	NoSimplify bool
	// Service overrides the constraint service for this transfer
	// (ablation hooks: a service with the memo or prefilter disabled).
	// Nil = the engine's shared service. The transfer's query session
	// is always private; its statistics merge into the engine
	// aggregate when Run finishes.
	Service *smt.Service
	// DisableDiodeRescan skips the residual-error scan.
	DisableDiodeRescan bool
	// DiodeRandSeed seeds the residual scans.
	DiodeRandSeed int64
	// Workers bounds the candidate-validation fan-out for this transfer
	// (0 = the engine default).
	Workers int
	// ProofConflicts bounds each overflow-freedom proof query
	// (0 = default of 20000). With portfolio solving the budget is per
	// replica: a proof query that exhausts the cheap trigger budget is
	// retried by every seeded replica at this bound, so raising it
	// scales each replica's search, not one monolithic solve.
	ProofConflicts int64
	// Trace captures a telemetry span tree for the transfer into
	// Result.Trace. Tracing rides beside the canonical outputs: a
	// traced run produces byte-identical reports and patch artifacts
	// to an untraced one. Engines with a Telemetry sink trace every
	// transfer regardless of this flag.
	Trace bool
}

func (o *Options) maxRounds() int {
	if o.MaxRounds > 0 {
		return o.MaxRounds
	}
	return 6
}

func (o *Options) proofConflicts() int64 {
	if o.ProofConflicts > 0 {
		return o.ProofConflicts
	}
	return proofConflictBudget
}

// Transfer describes one donor→recipient code transfer task. A nil
// Donor requests automatic donor selection: the engine's Select stage
// resolves it through the configured DonorSelector before Discover
// runs.
type Transfer struct {
	RecipientName string
	RecipientSrc  string
	// TargetID names the registry target this transfer addresses; it
	// is provenance recorded in the patch artifact ("" = ad hoc).
	TargetID   string
	Donor      *ir.Module // stripped donor binary (nil = select automatically)
	DonorName  string
	Format     string // dissector name
	Seed       []byte
	Error      []byte   // initial error-triggering input
	Regression [][]byte // inputs the recipient is known to process
	VulnFn     string   // DIODE rescan target function ("" = none)
	Opts       Options
}

// Run executes the transfer on the default engine. It is the
// compatibility entry point: phage.Transfer.Run delegates here.
func (t *Transfer) Run() (*Result, error) { return DefaultEngine().Run(t) }

// PatchRound reports one transferred patch (one error eliminated).
type PatchRound struct {
	CheckIndex      int // index of the used check among flipped ones
	RelevantSites   int // Figure 8: Relevant Branches
	FlippedSites    int // Figure 8: Flipped Branches
	CandidatePoints int // Figure 8: X
	UnstablePoints  int // Figure 8: Y
	Untranslatable  int // Figure 8: Z
	ViablePoints    int // Figure 8: W = X - Y - Z
	ExcisedOps      int // Figure 8: Check Size X
	TranslatedOps   int // Figure 8: Check Size Y
	ExcisedCheck    string
	TranslatedCheck string
	PatchText       string
	InsertFn        string
	InsertLine      int32
	ErrorInput      []byte

	excised *bitvec.Expr // field-level check, kept for the SMT argument
}

// Result is the outcome of a successful transfer.
type Result struct {
	// Donor is the donor that supplied the transferred checks: the
	// named donor, or — for auto-donor transfers — the donor the
	// Select stage resolved.
	Donor       string
	Rounds      []PatchRound
	FinalSource string
	// FinalModule is the validated patched build. It aliases a shared
	// compile-cache entry: treat it as immutable and Clone before any
	// in-place edit (BinaryPatch already does).
	FinalModule *ir.Module
	GenTime     time.Duration
	// OverflowFreeProven holds the SMT verdict on whether the
	// transferred checks rule out the observed overflows entirely
	// (nil: solver budget exhausted, verdict unknown).
	OverflowFreeProven *bool
	SolverStats        smt.Stats
	// Patch is the verifiable artifact for the transfer: the
	// checksummed byte delta from the original to FinalModule's image,
	// with provenance and the oracle inputs embedded (nil when no
	// check was transferred). Applying it to the original image
	// reproduces FinalModule's bytes exactly.
	Patch *patch.Artifact
	// Trace is the span tree of the run (nil unless Options.Trace is
	// set or the engine has a Telemetry sink). Its structure — span
	// names and fields — is a pure function of the transfer inputs;
	// only durations and attributes marked as metrics vary between
	// runs.
	Trace *telemetry.Span
}

// UsedChecks returns the number of transferred checks (Figure 8).
func (r *Result) UsedChecks() int { return len(r.Rounds) }

// Engine drives transfers through the staged pipeline. One engine can
// serve many concurrent transfers: the compile cache, the baseline
// cache, the shared constraint service and the solver statistics are
// shared and synchronised.
type Engine struct {
	// Workers bounds the candidate-validation fan-out per transfer
	// (0 = GOMAXPROCS).
	Workers int
	// Compiler is the content-keyed module cache (nil = the shared
	// process-wide cache).
	Compiler *compile.Cache
	// Selector resolves transfers whose Donor is nil (nil = auto-donor
	// transfers fail). internal/corpus provides the indexed knowledge
	// base implementation.
	Selector DonorSelector
	// Service is the shared constraint service every stage queries —
	// Discover/Translate sessions, validation's overflow-freedom
	// proofs, and the DIODE rescans all route through it (nil = the
	// process-wide smt.Default()).
	Service *smt.Service
	// Telemetry, when set, receives every transfer's span tree and
	// solver query timings for histogram aggregation (phaged shares
	// one sink across all engine shards). Setting it also enables
	// trace capture on every transfer the engine runs.
	Telemetry *telemetry.Sink

	mu        sync.Mutex
	stats     smt.Stats
	baselines map[baselineKey][]behaviour
	proofs    map[string]*bool
}

// NewEngine returns an engine with default settings, sharing the
// process-wide compile cache.
func NewEngine() *Engine {
	return &Engine{Compiler: compile.Default(), baselines: map[baselineKey][]behaviour{}}
}

var (
	defaultEngine     *Engine
	defaultEngineOnce sync.Once
)

// DefaultEngine returns the shared engine used by Transfer.Run.
func DefaultEngine() *Engine {
	defaultEngineOnce.Do(func() { defaultEngine = NewEngine() })
	return defaultEngine
}

// SolverStats returns the solver activity aggregated over every
// transfer the engine has run.
func (e *Engine) SolverStats() smt.Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

func (e *Engine) compiler() *compile.Cache {
	if e.Compiler != nil {
		return e.Compiler
	}
	return compile.Default()
}

// service returns the engine's constraint service.
func (e *Engine) service() *smt.Service {
	if e.Service != nil {
		return e.Service
	}
	return smt.Default()
}

func (e *Engine) workers(t *Transfer) int {
	if t.Opts.Workers > 0 {
		return t.Opts.Workers
	}
	if e.Workers > 0 {
		return e.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// TransferContext is the shared state the stages read and extend.
type TransferContext struct {
	Engine   *Engine
	Transfer *Transfer
	Dis      *hachoir.Dissection
	Solver   *smt.Session // private session on the shared service
	Compiler *compile.Cache

	// trace is the run's root span (nil when tracing is off). Stages
	// attach their spans here; telemetry.Span methods are nil-safe, so
	// stages never guard on it.
	trace *telemetry.Span

	// Round state.
	Round     int
	Src       string // current recipient source (patched so far)
	ErrIn     []byte // current error-triggering input
	Relevant  map[int]bool
	Recipient *ir.Module // compiled current source
	Baseline  []behaviour
	Discovery *Discovery

	// DonorRank is the Select stage's output: the deterministic ranked
	// donor candidate list the auto-donor retry loop iterates.
	DonorRank []DonorCandidate

	// Per-check state (the §1.1 retry loop iterates these).
	CheckIndex int
	Check      *Check
	Analysis   *InsertionAnalysis
	Candidates []patchCandidate
	Draft      *PatchRound // counts filled by Translate, patch by Validate

	// Winning-candidate state.
	PatchedSrc string
	PatchedMod *ir.Module
}

// Stage is one typed step of the engine over the TransferContext.
type Stage interface {
	Name() string
	Run(ctx *TransferContext) error
}

// checkStages is the per-candidate-check sub-pipeline.
func checkStages() []Stage {
	return []Stage{stageAnalyzePoints{}, stageTranslate{}, stageInsertValidate{}}
}

// Run executes the full Code Phage pipeline for the transfer task.
// When the task names no donor (nil Transfer.Donor), the Select stage
// resolves one through the engine's DonorSelector first.
func (e *Engine) Run(t *Transfer) (*Result, error) {
	var res *Result
	var err error
	if t.Donor == nil {
		res, err = e.runAuto(t)
	} else {
		res, err = e.runResolved(t)
	}
	if err == nil {
		// One observation point for the finished trace (runAuto grafts
		// the Select span in first), so the sink's histogram counts
		// track exactly the spans a caller sees on Result.Trace.
		e.Telemetry.ObserveTrace(res.Trace)
	}
	return res, err
}

// tracing reports whether this transfer captures a span tree.
func (e *Engine) tracing(t *Transfer) bool {
	return t.Opts.Trace || e.Telemetry != nil
}

// runResolved executes the pipeline for a transfer whose donor is
// already concrete: Discover onward.
func (e *Engine) runResolved(t *Transfer) (*Result, error) {
	start := time.Now()
	ctx, err := e.newContext(t)
	if err != nil {
		return nil, err
	}
	if e.tracing(t) {
		ctx.trace = telemetry.New("Transfer").
			Field("recipient", t.RecipientName).
			Field("target", t.TargetID).
			Field("donor", t.DonorName).
			Field("format", t.Format)
	}

	res := &Result{Donor: t.DonorName, FinalSource: t.RecipientSrc, FinalModule: ctx.Recipient}
	origMod := ctx.Recipient     // pre-patch build, the artifact's baseline
	var guards []*bitvec.Expr    // transferred checks (field-level)
	var sizeExprs []*bitvec.Expr // overflowing size expressions seen

	for round := 0; round < t.Opts.maxRounds(); round++ {
		ctx.Round = round
		pr, err := e.runRound(ctx)
		if err != nil {
			return nil, fmt.Errorf("phage: round %d: %w", round+1, err)
		}
		res.Rounds = append(res.Rounds, *pr)
		ctx.Src, res.FinalSource = ctx.PatchedSrc, ctx.PatchedSrc
		res.FinalModule = ctx.PatchedMod

		// Collect material for the overflow-freedom argument.
		if pr.excised != nil {
			guards = append(guards, pr.excised)
		}

		rsp := ctx.trace.Child(telemetry.StageRescan).Fieldf("round", "%d", round)
		rescanStart := time.Now()
		finding, stop, err := stageRescan{}.scan(ctx)
		rsp.SetDuration(time.Since(rescanStart))
		switch {
		case err != nil:
			rsp.Field("outcome", "error")
		case t.VulnFn == "" || t.Opts.DisableDiodeRescan:
			rsp.Field("outcome", "disabled")
		case stop:
			rsp.Field("outcome", "clean")
		default:
			rsp.Field("outcome", "residual")
		}
		if err != nil {
			return nil, fmt.Errorf("phage: residual scan: %w", err)
		}
		if stop {
			break
		}
		sizeExprs = append(sizeExprs, finding.SizeExpr)
		ctx.ErrIn = finding.Input
	}

	// Package the transfer as a verifiable artifact. Building it last
	// means the artifact always describes the fully validated final
	// module, including every residual-error round.
	if len(res.Rounds) > 0 && res.FinalModule != origMod {
		a, err := buildArtifact(t, origMod, res)
		if err != nil {
			return nil, fmt.Errorf("phage: patch artifact: %w", err)
		}
		res.Patch = a
	}

	res.GenTime = time.Since(start)
	res.OverflowFreeProven = e.overflowVerdict(ctx.Solver.Service(), guards, sizeExprs, t.Opts.proofConflicts())
	// ctx.Solver is a private session on the shared service, so its
	// Stats are exactly this transfer's activity: merge them into the
	// engine aggregate under the engine lock, so concurrent transfers
	// neither race nor double-count.
	res.SolverStats = ctx.Solver.Stats
	e.mu.Lock()
	e.stats.Merge(ctx.Solver.Stats)
	e.mu.Unlock()
	if ctx.trace != nil {
		root := ctx.trace
		root.SetDuration(res.GenTime)
		root.Fieldf("rounds", "%d", len(res.Rounds))
		// Solver activity is volatile: memo warmth decides how many
		// queries reach the SAT solver.
		st := res.SolverStats
		root.Metricf("solver_queries", "%d", st.Queries)
		root.Metricf("solver_cache_hits", "%d", st.CacheHits)
		root.Metricf("solver_sat_calls", "%d", st.SATCalls)
		root.Metricf("solver_sat_time", "%s", st.SATTime)
		res.Trace = root
	}
	return res, nil
}

// newContext vets the task (format, donor behaviour) and establishes
// the baseline regression behaviour of the original recipient.
func (e *Engine) newContext(t *Transfer) (*TransferContext, error) {
	// The transfer's query handle is always a private session: the
	// underlying service (with its verdict memo, CNF memo and
	// persistent solver) is shared engine-wide — or process-wide via
	// smt.Default() — so batch tasks never race on session state yet
	// still share every verdict.
	svc := t.Opts.Service
	if svc == nil {
		svc = e.service()
	}
	solver := svc.Session()
	if sink := e.Telemetry; sink != nil {
		// Per-query-class latency lands in the sink's solver
		// histograms; the session stays single-goroutine, the sink is
		// concurrency-safe.
		solver.Observer = sink.ObserveSolver
	}
	dissector, ok := hachoir.ByName(t.Format)
	if !ok {
		return nil, fmt.Errorf("phage: unknown input format %q", t.Format)
	}
	dis, err := dissector.Dissect(t.Seed)
	if err != nil {
		return nil, err
	}

	// Donor selection: the donor must process both inputs (§3.1).
	donorRunner := vm.NewRunner(t.Donor)
	if r := donorRunner.Run(t.Seed); !r.OK() {
		return nil, fmt.Errorf("phage: donor %s rejected: crashes on seed: %v", t.DonorName, r.Trap)
	}
	if r := donorRunner.Run(t.Error); !r.OK() {
		return nil, fmt.Errorf("phage: donor %s rejected: crashes on error input: %v", t.DonorName, r.Trap)
	}

	// Baseline regression behaviour of the original recipient.
	cc := e.compiler()
	origMod, err := cc.Compile(t.RecipientName, t.RecipientSrc)
	if err != nil {
		return nil, fmt.Errorf("phage: recipient does not compile: %w", err)
	}
	baseline := e.baselineFor(origMod, t.Regression, t.Opts.MaxSteps)

	return &TransferContext{
		Engine:    e,
		Transfer:  t,
		Dis:       dis,
		Solver:    solver,
		Compiler:  cc,
		Src:       t.RecipientSrc,
		ErrIn:     t.Error,
		Recipient: origMod,
		Baseline:  baseline,
	}, nil
}

// runRound transfers one patch for the current error input: Discover,
// then the per-check sub-pipeline until one check validates.
func (e *Engine) runRound(ctx *TransferContext) (*PatchRound, error) {
	t := ctx.Transfer
	if err := (stageDiscover{}).Run(ctx); err != nil {
		return nil, err
	}
	if len(ctx.Discovery.Checks) == 0 {
		return nil, fmt.Errorf("donor %s has no flipped branches for this error", t.DonorName)
	}

	maxChecks := t.Opts.MaxChecks
	if maxChecks <= 0 || maxChecks > len(ctx.Discovery.Checks) {
		maxChecks = len(ctx.Discovery.Checks)
	}
	var lastErr error
	for ci := 0; ci < maxChecks; ci++ {
		ctx.CheckIndex, ctx.Check = ci, &ctx.Discovery.Checks[ci]
		pr, err := e.tryCheck(ctx)
		if err != nil {
			lastErr = err
			continue // try the next candidate check (§1.1 Retry)
		}
		pr.CheckIndex = ci
		pr.RelevantSites = ctx.Discovery.RelevantSites
		pr.FlippedSites = ctx.Discovery.FlippedSites
		pr.ErrorInput = ctx.ErrIn
		return pr, nil
	}
	return nil, fmt.Errorf("no candidate check validates (last: %v)", lastErr)
}

// tryCheck runs the per-check stages for the current candidate check.
func (e *Engine) tryCheck(ctx *TransferContext) (*PatchRound, error) {
	ctx.Analysis, ctx.Candidates, ctx.Draft = nil, nil, nil
	for _, st := range checkStages() {
		if err := st.Run(ctx); err != nil {
			return nil, err
		}
	}
	return ctx.Draft, nil
}

// stageDiscover diffs the inputs and excises candidate checks from the
// donor (§3.2), and compiles the current recipient source through the
// content-keyed cache.
type stageDiscover struct{}

func (stageDiscover) Name() string { return "Discover" }

func (stageDiscover) Run(ctx *TransferContext) error {
	t := ctx.Transfer
	sp := ctx.trace.Child(telemetry.StageDiscover).Fieldf("round", "%d", ctx.Round)
	start := time.Now()
	defer func() { sp.SetDuration(time.Since(start)) }()
	ctx.Relevant = ctx.Dis.DiffFields(t.Seed, ctx.ErrIn)
	disc, err := DiscoverChecks(t.Donor, t.Seed, ctx.ErrIn, ctx.Dis, ctx.Relevant, t.Opts.NoSimplify)
	if err != nil {
		sp.Field("outcome", "error")
		return err
	}
	ctx.Discovery = disc
	sp.Fieldf("checks", "%d", len(disc.Checks)).
		Fieldf("relevant", "%d", disc.RelevantSites).
		Fieldf("flipped", "%d", disc.FlippedSites)
	csp := sp.Child("Compile").Field("unit", "recipient")
	compileStart := time.Now()
	mod, hit, err := ctx.Compiler.CompileHit(t.RecipientName, ctx.Src)
	csp.SetDuration(time.Since(compileStart))
	csp.Metric("cache", cacheLabel(hit))
	if err != nil {
		return fmt.Errorf("recipient does not compile: %w", err)
	}
	ctx.Recipient = mod
	return nil
}

// cacheLabel renders a compile-cache outcome for span metrics. Cache
// hits depend on what ran before, so the label is volatile by
// definition and always attached with Metric, never Field.
func cacheLabel(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

// stageAnalyzePoints finds the candidate insertion points for the
// current check's input fields (§3.3).
type stageAnalyzePoints struct{}

func (stageAnalyzePoints) Name() string { return "AnalyzePoints" }

func (stageAnalyzePoints) Run(ctx *TransferContext) error {
	sp := ctx.trace.Child(telemetry.StageAnalyzePoints).
		Fieldf("round", "%d", ctx.Round).
		Fieldf("check", "%d", ctx.CheckIndex)
	start := time.Now()
	defer func() { sp.SetDuration(time.Since(start)) }()
	fields := ctx.Check.Cond.Fields()
	if len(fields) == 0 {
		sp.Field("outcome", "no-fields")
		return fmt.Errorf("check at %v has no input fields", ctx.Check.Site)
	}
	sp.Fieldf("fields", "%d", len(fields))
	analysis, err := AnalyzeInsertionPoints(ctx.Recipient, ctx.Transfer.Seed, ctx.Dis, fields, ctx.Relevant)
	if err != nil {
		sp.Field("outcome", "error")
		return err
	}
	ctx.Analysis = analysis
	total, unstable, stable := analysis.Candidates()
	sp.Fieldf("points", "%d", total).
		Fieldf("stable", "%d", len(stable)).
		Fieldf("unstable", "%d", unstable)
	return nil
}

// patchCandidate is one translated patch at one insertion point.
type patchCandidate struct {
	point      *Point
	translated *bitvec.Expr
	text       string
}

// stageTranslate rewrites the check at every stable insertion point on
// the transfer's private service session and ranks the generated
// patches by size (§2): the deterministic rank order is what the
// validator reduces over, so parallel validation cannot change the
// winning patch.
type stageTranslate struct{}

func (stageTranslate) Name() string { return "Translate" }

func (stageTranslate) Run(ctx *TransferContext) error {
	sp := ctx.trace.Child(telemetry.StageTranslate).
		Fieldf("round", "%d", ctx.Round).
		Fieldf("check", "%d", ctx.CheckIndex)
	start := time.Now()
	statsBefore := ctx.Solver.Stats
	defer func() {
		sp.SetDuration(time.Since(start))
		if sp != nil {
			// The translation solver-stats delta: volatile, since the
			// shared memo decides which queries are answered for free.
			d := ctx.Solver.Stats
			sp.Metricf("solver_queries", "%d", d.Queries-statsBefore.Queries)
			sp.Metricf("solver_cache_hits", "%d", d.CacheHits-statsBefore.CacheHits)
			sp.Metricf("solver_sat_calls", "%d", d.SATCalls-statsBefore.SATCalls)
		}
	}()
	check := ctx.Check
	total, unstable, stable := ctx.Analysis.Candidates()

	// Translate the check at every stable point (§3.3) on the
	// transfer's private session: checks are tried strictly
	// sequentially within a transfer, and the session's service-backed
	// memo means repeated queries — across checks, rounds, and every
	// other transfer on the same service — are answered without
	// re-proving.
	solver := ctx.Solver
	var candidates []patchCandidate
	untranslatable := 0
	for _, p := range stable {
		translated := Rewrite(check.Cond, p.Names, solver)
		if translated == nil {
			untranslatable++
			continue
		}
		text, rerr := PatchText(translated, ctx.Transfer.Opts.ExitMode)
		if rerr != nil {
			untranslatable++
			continue
		}
		candidates = append(candidates, patchCandidate{point: p, translated: translated, text: text})
	}

	ctx.Draft = &PatchRound{
		CandidatePoints: total,
		UnstablePoints:  unstable,
		Untranslatable:  untranslatable,
		ViablePoints:    len(candidates),
		ExcisedOps:      check.Raw.OpCount(),
		ExcisedCheck:    check.Cond.String(),
		excised:         check.Cond,
	}
	sp.Fieldf("viable", "%d", len(candidates)).
		Fieldf("untranslatable", "%d", untranslatable)
	if len(candidates) == 0 {
		return fmt.Errorf("check translates at no stable insertion point")
	}

	// Sort generated patches by size and validate in that order (§2).
	sort.Slice(candidates, func(i, j int) bool {
		oi, oj := candidates[i].translated.OpCount(), candidates[j].translated.OpCount()
		if oi != oj {
			return oi < oj
		}
		if len(candidates[i].text) != len(candidates[j].text) {
			return len(candidates[i].text) < len(candidates[j].text)
		}
		if candidates[i].point.Fn != candidates[j].point.Fn {
			return candidates[i].point.Fn < candidates[j].point.Fn
		}
		return candidates[i].point.Line < candidates[j].point.Line
	})
	ctx.Candidates = candidates
	return nil
}

// candidateOutcome is the validation result of one ranked candidate.
type candidateOutcome struct {
	done       bool
	patchedSrc string
	val        *Validation
	insertErr  error
	// insertSpan/validateSpan are built privately by the validating
	// goroutine and adopted into the trace afterwards — in rank order,
	// and only for the deterministic prefix of candidates (see
	// stageInsertValidate.Run).
	insertSpan   *telemetry.Span
	validateSpan *telemetry.Span
}

func (o *candidateOutcome) ok() bool { return o.insertErr == nil && o.val != nil && o.val.OK() }

func (o *candidateOutcome) reason() string {
	if o.insertErr != nil {
		return o.insertErr.Error()
	}
	return o.val.FailReason
}

// stageInsertValidate splices each ranked candidate into the source
// and validates it (recompile through the cache, replay the error
// input and the regression suite). Candidates fan out across the
// worker pool; the reduction picks the first-ranked success — not the
// first to finish — so the winning patch matches the sequential order.
type stageInsertValidate struct{}

func (stageInsertValidate) Name() string { return "InsertValidate" }

func (s stageInsertValidate) Run(ctx *TransferContext) error {
	cands := ctx.Candidates
	outcomes := make([]candidateOutcome, len(cands))
	workers := ctx.Engine.workers(ctx.Transfer)
	if workers > len(cands) {
		workers = len(cands)
	}

	if workers <= 1 {
		for i := range cands {
			s.validateOne(ctx, i, &cands[i], &outcomes[i])
			if outcomes[i].ok() {
				break
			}
		}
	} else {
		// Rank-then-reduce: tasks are claimed in rank order; once a
		// candidate succeeds, no later-ranked task starts (earlier ones
		// always finish, so the minimal success is always discovered).
		var next, best atomic.Int64
		best.Store(int64(len(cands)))
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := next.Add(1) - 1
					if i >= int64(len(cands)) || i > best.Load() {
						return
					}
					s.validateOne(ctx, int(i), &cands[i], &outcomes[i])
					if outcomes[i].ok() {
						for {
							b := best.Load()
							if i >= b || best.CompareAndSwap(b, i) {
								break
							}
						}
					}
				}
			}()
		}
		wg.Wait()
	}

	// Rank-then-reduce guarantees every candidate up to and including
	// the first-ranked success ran to completion; candidates beyond the
	// winner may or may not have started, depending on scheduling. The
	// trace therefore adopts spans only for that deterministic prefix
	// (all candidates when none validates — those always all run), in
	// rank order, keeping the span-tree shape a pure function of the
	// inputs.
	winner := -1
	for i := range outcomes {
		if outcomes[i].done && outcomes[i].ok() {
			winner = i
			break
		}
	}
	limit := len(outcomes)
	if winner >= 0 {
		limit = winner + 1
	}
	lastReason := ""
	for i := 0; i < limit; i++ {
		if !outcomes[i].done {
			continue
		}
		ctx.trace.Adopt(outcomes[i].insertSpan)
		ctx.trace.Adopt(outcomes[i].validateSpan)
		if !outcomes[i].ok() {
			lastReason = outcomes[i].reason()
		}
	}
	if winner < 0 {
		return fmt.Errorf("no insertion point validates (last: %s)", lastReason)
	}
	cand := &cands[winner]
	ctx.Draft.TranslatedOps = cand.translated.OpCount()
	ctx.Draft.TranslatedCheck = cand.translated.String()
	ctx.Draft.PatchText = cand.text
	ctx.Draft.InsertFn = cand.point.FnName
	ctx.Draft.InsertLine = cand.point.Line
	ctx.PatchedSrc = outcomes[winner].patchedSrc
	ctx.PatchedMod = outcomes[winner].val.Module
	return nil
}

func (stageInsertValidate) validateOne(ctx *TransferContext, idx int, cand *patchCandidate, out *candidateOutcome) {
	out.done = true
	tracing := ctx.trace != nil
	var start time.Time
	if tracing {
		out.insertSpan = telemetry.New(telemetry.StageInsert).
			Fieldf("round", "%d", ctx.Round).
			Fieldf("check", "%d", ctx.CheckIndex).
			Fieldf("candidate", "%d", idx).
			Field("fn", cand.point.FnName).
			Fieldf("line", "%d", cand.point.Line)
		start = time.Now()
	}
	patchedSrc, perr := InsertBeforeLine(ctx.Src, cand.point.Line, cand.text)
	if tracing {
		out.insertSpan.SetDuration(time.Since(start))
		out.insertSpan.Field("outcome", insertOutcome(perr))
	}
	if perr != nil {
		out.insertErr = perr
		return
	}
	t := ctx.Transfer
	out.patchedSrc = patchedSrc
	var vsp *telemetry.Span
	if tracing {
		vsp = telemetry.New(telemetry.StageValidate).
			Fieldf("round", "%d", ctx.Round).
			Fieldf("check", "%d", ctx.CheckIndex).
			Fieldf("candidate", "%d", idx)
		start = time.Now()
	}
	out.val = validatePatch(ctx.Compiler, t.RecipientName, patchedSrc, ctx.ErrIn, t.Regression, ctx.Baseline, t.Opts.MaxSteps, vsp)
	if tracing {
		vsp.SetDuration(time.Since(start))
		if out.val.OK() {
			vsp.Field("verdict", "ok")
		} else {
			vsp.Field("verdict", out.val.FailReason)
		}
		out.validateSpan = vsp
	}
}

func insertOutcome(err error) string {
	if err != nil {
		return "error"
	}
	return "ok"
}

// stageRescan reruns DIODE on the patched build for residual errors
// (§3.4).
type stageRescan struct{}

func (stageRescan) Name() string { return "Rescan" }

func (r stageRescan) Run(ctx *TransferContext) error {
	_, _, err := r.scan(ctx)
	return err
}

// scan returns the residual finding, or stop=true when the loop is
// done (rescan disabled or no residual error found).
func (stageRescan) scan(ctx *TransferContext) (*diode.Finding, bool, error) {
	t := ctx.Transfer
	if t.VulnFn == "" || t.Opts.DisableDiodeRescan {
		return nil, true, nil
	}
	finding, err := diode.Discover(ctx.PatchedMod, t.Seed, ctx.Dis, diode.Options{
		VulnFn: t.VulnFn, MaxSteps: t.Opts.MaxSteps,
		RandSeed: t.Opts.DiodeRandSeed + int64(ctx.Round),
		// Rescans ride the transfer's constraint service: sites proven
		// overflow-free once stay skipped for every later round and
		// every other transfer on the service.
		Service: ctx.Solver.Service(),
	})
	if err != nil {
		return nil, false, err
	}
	if finding == nil {
		return nil, true, nil // no residual errors: done
	}
	return finding, false, nil
}

// baselineKey identifies one recipient module's regression baseline.
// Modules from the compile cache are canonical pointers, so pointer
// identity plus the input digest is exact.
type baselineKey struct {
	mod    *ir.Module
	digest [sha256.Size]byte
}

// baselineFor observes (and caches) the baseline behaviour of the
// original recipient over the regression suite.
func (e *Engine) baselineFor(mod *ir.Module, regression [][]byte, maxSteps int64) []behaviour {
	h := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(maxSteps))
	h.Write(buf[:])
	for _, in := range regression {
		binary.LittleEndian.PutUint64(buf[:], uint64(len(in)))
		h.Write(buf[:])
		h.Write(in)
	}
	var key baselineKey
	key.mod = mod
	h.Sum(key.digest[:0])

	e.mu.Lock()
	if e.baselines == nil {
		e.baselines = map[baselineKey][]behaviour{}
	}
	if b, ok := e.baselines[key]; ok {
		e.mu.Unlock()
		return b
	}
	e.mu.Unlock()

	baseline := observeAll(mod, regression, maxSteps)

	e.mu.Lock()
	defer e.mu.Unlock()
	if b, ok := e.baselines[key]; ok {
		return b // a concurrent observation won the race
	}
	// Bound the cache: keys pin *ir.Module values, so an unbounded map
	// would slowly leak modules in a long-lived shared engine (eviction
	// order only costs re-observation, never correctness).
	if len(e.baselines) >= maxBaselineEntries {
		drop := maxBaselineEntries / 4
		for k := range e.baselines {
			delete(e.baselines, k)
			if drop--; drop <= 0 {
				break
			}
		}
	}
	e.baselines[key] = baseline
	return baseline
}

// maxBaselineEntries bounds the engine's baseline cache.
const maxBaselineEntries = 256

// proofConflictBudget bounds each overflow-freedom SAT call.
const proofConflictBudget = 20000

// overflowVerdict runs (and caches) the overflow-freedom argument on
// the given constraint service (the transfer's own). The verdict is a
// pure function of the guard and size expressions, and the bounded
// UNSAT search dominates repeated transfers of the same patch set, so
// the engine memoises it by expression content (on top of the shared
// service's own query memo).
func (e *Engine) overflowVerdict(svc *smt.Service, guards, sizeExprs []*bitvec.Expr, budget int64) *bool {
	if len(guards) == 0 || len(sizeExprs) == 0 {
		return nil
	}
	// The budget is part of the key: a larger budget can prove what a
	// smaller one exhausted on.
	sb := fmt.Appendf(nil, "%d|", budget)
	for _, g := range guards {
		sb = append(sb, g.Key()...)
		sb = append(sb, '&')
	}
	sb = append(sb, '|')
	for _, s := range sizeExprs {
		sb = append(sb, s.Key()...)
		sb = append(sb, '&')
	}
	key := string(sb)

	e.mu.Lock()
	if v, ok := e.proofs[key]; ok {
		e.mu.Unlock()
		return v
	}
	e.mu.Unlock()

	// The overflow-freedom argument gets its own small conflict budget:
	// satisfiable cases fall out of concrete probing almost instantly,
	// while full UNSAT proofs over 64-bit multipliers are routinely out
	// of reach — the verdict is then "unproven" (nil), and the DIODE
	// residual scan remains the operative evidence. The session rides
	// the transfer's service, so the proof queries hit the same memo as
	// everything else.
	// Proof-session stats stay out of the engine aggregate (as the old
	// throwaway proof solvers did): the engine aggregate equals the sum
	// of per-result stats, and the service's own counters cover these.
	proofSession := svc.Session()
	proofSession.MaxConflicts = budget
	v := proveOverflowFree(proofSession, guards, sizeExprs)

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.proofs == nil {
		e.proofs = map[string]*bool{}
	}
	if old, ok := e.proofs[key]; ok {
		return old // a concurrent proof won the race
	}
	e.proofs[key] = v
	return v
}

// proveOverflowFree asks the solver whether any input can satisfy all
// transferred checks and still wrap one of the observed allocation
// sizes (§1.1: additional validation for integer overflow errors).
// Returns nil when the verdict is unknown (budget exhausted) or there
// is nothing to prove.
func proveOverflowFree(solver *smt.Session, guards, sizeExprs []*bitvec.Expr) *bool {
	if len(guards) == 0 || len(sizeExprs) == 0 {
		return nil
	}
	verdict := true
	for _, size := range sizeExprs {
		cond := diode.OverflowCond(size, 1<<20)
		for _, g := range guards {
			cond = bitvec.And(g, cond)
		}
		sat, _, err := solver.Sat(cond)
		if err != nil {
			return nil // unknown
		}
		if sat {
			verdict = false
		}
	}
	return &verdict
}
