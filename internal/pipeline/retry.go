package pipeline

import (
	"fmt"
	"strings"

	"codephage/internal/ir"
)

// DonorCandidate pairs a donor binary with a display name for the
// multi-donor retry loop.
type DonorCandidate struct {
	Name   string
	Module *ir.Module
}

// TryDonors implements the outermost retry loop of §1.1: it attempts
// the transfer with each donor in turn — candidate insertion points
// and candidate checks are already retried inside Transfer.Run — and
// returns the first validated result. The template transfer supplies
// everything except the donor.
func TryDonors(template *Transfer, donors []DonorCandidate) (*Result, string, error) {
	res, name, errs := tryDonorList(func(tr *Transfer) (*Result, error) { return tr.Run() },
		template, donors)
	if res == nil {
		return nil, "", fmt.Errorf("phage: no donor yields a validated transfer:\n  %s",
			strings.Join(errs, "\n  "))
	}
	return res, name, nil
}

// tryDonorList is the shared retry core: run the template against
// each donor in order, returning the first validated result or the
// accumulated per-donor failures.
func tryDonorList(run func(*Transfer) (*Result, error), template *Transfer, donors []DonorCandidate) (*Result, string, []string) {
	var errs []string
	for _, d := range donors {
		tr := *template
		tr.Donor = d.Module
		tr.DonorName = d.Name
		res, err := run(&tr)
		if err == nil {
			return res, d.Name, nil
		}
		errs = append(errs, fmt.Sprintf("%s: %v", d.Name, err))
	}
	return nil, "", errs
}
