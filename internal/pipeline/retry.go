package pipeline

import (
	"fmt"
	"strings"

	"codephage/internal/ir"
)

// DonorCandidate pairs a donor binary with a display name for the
// multi-donor retry loop.
type DonorCandidate struct {
	Name   string
	Module *ir.Module
}

// TryDonors implements the outermost retry loop of §1.1: it attempts
// the transfer with each donor in turn — candidate insertion points
// and candidate checks are already retried inside Transfer.Run — and
// returns the first validated result. The template transfer supplies
// everything except the donor.
func TryDonors(template *Transfer, donors []DonorCandidate) (*Result, string, error) {
	var errs []string
	for _, d := range donors {
		tr := *template
		tr.Donor = d.Module
		tr.DonorName = d.Name
		res, err := tr.Run()
		if err == nil {
			return res, d.Name, nil
		}
		errs = append(errs, fmt.Sprintf("%s: %v", d.Name, err))
	}
	return nil, "", fmt.Errorf("phage: no donor yields a validated transfer:\n  %s",
		strings.Join(errs, "\n  "))
}
