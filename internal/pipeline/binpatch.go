package pipeline

import (
	"fmt"
	"strconv"
	"strings"

	"codephage/internal/bitvec"
	"codephage/internal/ir"
)

// This file implements binary patch generation — the capability §1.2
// sketches ("given appropriate binary patching capability, it would be
// straightforward to generate binary patches, including hot patches
// for running applications"). The translated check is compiled
// directly to MVX instructions and spliced into the recipient image
// before the insertion point; no source or recompilation is needed.
// Recipient debug information (which Code Phage requires anyway for
// the data structure traversal) resolves the Ref paths to frame and
// global addresses.

// BinaryPatch splices the compiled check into a clone of the module,
// in the named function immediately before the first instruction of
// the given source line. The patch evaluates the translated check and,
// when it fails, exits with -1 (ExitOnFail) or returns 0 (ReturnZero).
func BinaryPatch(mod *ir.Module, fnName string, line int32, translated *bitvec.Expr, mode ExitMode) (*ir.Module, error) {
	out := mod.Clone()
	f, fnIdx := out.FuncByName(fnName)
	if f == nil {
		return nil, fmt.Errorf("phage: no function %q in module", fnName)
	}
	_ = fnIdx
	pc := int32(-1)
	for i := range f.Code {
		if f.Code[i].Line == line {
			pc = int32(i)
			break
		}
	}
	if pc < 0 {
		return nil, fmt.Errorf("phage: line %d has no code in %s", line, fnName)
	}

	g := &binGen{mod: out, f: f}
	condReg, err := g.gen(bitvec.BoolOf(translated))
	if err != nil {
		return nil, err
	}
	// Guard: br cond -> continue : action.
	brIdx := g.emit(ir.Instr{Op: ir.Br, A: condReg, Line: line})
	g.patch[brIdx].Target2 = brIdx + 1 // fall through to the action
	switch mode {
	case ReturnZero:
		zero := g.constReg(ir.W64, 0)
		g.emit(ir.Instr{Op: ir.Ret, A: zero, Line: line})
	default:
		code := g.constReg(ir.W32, uint64(0xFFFFFFFF)) // -1
		dst := g.newReg()
		g.emit(ir.Instr{Op: ir.CallB, Builtin: ir.BExit, Dst: dst,
			Args: []ir.Reg{code}, Line: line})
		// exit halts; a terminator keeps the validator satisfied.
		zero := g.constReg(ir.W64, 0)
		g.emit(ir.Instr{Op: ir.Ret, A: zero, Line: line})
	}
	n := int32(len(g.patch))
	g.patch[brIdx].Target = n // continue past the patch

	// Splice and relocate. Patch-internal targets are relative to the
	// patch start; existing targets at or beyond the insertion point
	// shift by the patch length, except branches back to exactly the
	// insertion point, which now re-enter the guard (matching a
	// source-level insertion before the statement inside a loop).
	for i := range g.patch {
		in := &g.patch[i]
		switch in.Op {
		case ir.Jmp, ir.Br:
			in.Target += pc
			if in.Op == ir.Br {
				in.Target2 += pc
			}
		}
	}
	reloc := func(t int32) int32 {
		if t > pc {
			return t + n
		}
		return t
	}
	for i := range f.Code {
		in := &f.Code[i]
		switch in.Op {
		case ir.Jmp:
			in.Target = reloc(in.Target)
		case ir.Br:
			in.Target = reloc(in.Target)
			in.Target2 = reloc(in.Target2)
		}
	}
	newCode := make([]ir.Instr, 0, len(f.Code)+int(n))
	newCode = append(newCode, f.Code[:pc]...)
	newCode = append(newCode, g.patch...)
	newCode = append(newCode, f.Code[pc:]...)
	f.Code = newCode

	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("phage: binary patch produced invalid module: %w", err)
	}
	return out, nil
}

// binGen emits MVX instructions for a translated expression. Values
// are held zero-extended in their container width; sub-container
// widths are masked after every operation (the same discipline as the
// MiniC renderer).
type binGen struct {
	mod   *ir.Module
	f     *ir.Function
	patch []ir.Instr
}

func (g *binGen) emit(in ir.Instr) int32 {
	g.patch = append(g.patch, in)
	return int32(len(g.patch) - 1)
}

func (g *binGen) newReg() ir.Reg {
	r := ir.Reg(g.f.NumRegs)
	g.f.NumRegs++
	return r
}

func (g *binGen) constReg(w ir.Width, v uint64) ir.Reg {
	r := g.newReg()
	g.emit(ir.Instr{Op: ir.ConstOp, W: w, Dst: r, Imm: v & w.Mask()})
	return r
}

func container(w uint8) ir.Width {
	switch {
	case w <= 8:
		return ir.W8
	case w <= 16:
		return ir.W16
	case w <= 32:
		return ir.W32
	default:
		return ir.W64
	}
}

// maskTo masks reg down to w bits when w is not a container width.
func (g *binGen) maskTo(r ir.Reg, w uint8) ir.Reg {
	cw := container(w)
	if uint8(cw) == w {
		return r
	}
	m := g.constReg(cw, bitvec.Mask(w))
	dst := g.newReg()
	g.emit(ir.Instr{Op: ir.And, W: cw, Dst: dst, A: r, B: m})
	return dst
}

func (g *binGen) gen(e *bitvec.Expr) (ir.Reg, error) {
	cw := container(e.W)
	switch e.Op {
	case bitvec.OpConst:
		return g.constReg(cw, e.Val), nil
	case bitvec.OpRef:
		return g.genRef(e)
	case bitvec.OpField:
		return 0, fmt.Errorf("phage: untranslated field %q in binary patch", e.Name)
	}

	x, err := g.gen(e.X)
	if err != nil {
		return 0, err
	}
	switch e.Op {
	case bitvec.OpNot:
		ones := g.constReg(cw, ^uint64(0))
		dst := g.newReg()
		g.emit(ir.Instr{Op: ir.Xor, W: cw, Dst: dst, A: x, B: ones})
		return g.maskTo(dst, e.W), nil
	case bitvec.OpNeg:
		zero := g.constReg(cw, 0)
		dst := g.newReg()
		g.emit(ir.Instr{Op: ir.Sub, W: cw, Dst: dst, A: zero, B: x})
		return g.maskTo(dst, e.W), nil
	case bitvec.OpZExt:
		return x, nil // already zero-extended in its container
	case bitvec.OpSExt:
		if uint8(container(e.X.W)) != e.X.W || uint8(cw) != e.W {
			return 0, ErrUnrenderable{e.Op}
		}
		dst := g.newReg()
		g.emit(ir.Instr{Op: ir.SExt, W: cw, SrcW: container(e.X.W), Dst: dst, A: x})
		return dst, nil
	case bitvec.OpBool:
		zero := g.constReg(container(e.X.W), 0)
		dst := g.newReg()
		g.emit(ir.Instr{Op: ir.Ne, W: container(e.X.W), Dst: dst, A: x, B: zero})
		return dst, nil
	case bitvec.OpLNot:
		zero := g.constReg(container(e.X.W), 0)
		dst := g.newReg()
		g.emit(ir.Instr{Op: ir.Eq, W: container(e.X.W), Dst: dst, A: x, B: zero})
		return dst, nil
	case bitvec.OpExtr:
		sh := g.constReg(ir.W64, uint64(e.Lo))
		shifted := g.newReg()
		g.emit(ir.Instr{Op: ir.LShr, W: ir.W64, Dst: shifted, A: x, B: sh})
		m := g.constReg(ir.W64, bitvec.Mask(e.W))
		dst := g.newReg()
		g.emit(ir.Instr{Op: ir.And, W: ir.W64, Dst: dst, A: shifted, B: m})
		return dst, nil
	}

	y, err := g.gen(e.Y)
	if err != nil {
		return 0, err
	}
	bin := func(op ir.Op) (ir.Reg, error) {
		dst := g.newReg()
		g.emit(ir.Instr{Op: op, W: cw, Dst: dst, A: x, B: y})
		return g.maskTo(dst, e.W), nil
	}
	cmp := func(op ir.Op) (ir.Reg, error) {
		ow := container(e.X.W)
		if (op == ir.SLt || op == ir.SLe) && uint8(ow) != e.X.W {
			return 0, ErrUnrenderable{e.Op}
		}
		dst := g.newReg()
		g.emit(ir.Instr{Op: op, W: ow, Dst: dst, A: x, B: y})
		return dst, nil
	}
	switch e.Op {
	case bitvec.OpAdd:
		return bin(ir.Add)
	case bitvec.OpSub:
		return bin(ir.Sub)
	case bitvec.OpMul:
		return bin(ir.Mul)
	case bitvec.OpUDiv:
		return bin(ir.UDiv)
	case bitvec.OpURem:
		return bin(ir.URem)
	case bitvec.OpSDiv:
		if uint8(cw) != e.W {
			return 0, ErrUnrenderable{e.Op}
		}
		return bin(ir.SDiv)
	case bitvec.OpSRem:
		if uint8(cw) != e.W {
			return 0, ErrUnrenderable{e.Op}
		}
		return bin(ir.SRem)
	case bitvec.OpAnd:
		return bin(ir.And)
	case bitvec.OpOr:
		return bin(ir.Or)
	case bitvec.OpXor:
		return bin(ir.Xor)
	case bitvec.OpShl:
		return bin(ir.Shl)
	case bitvec.OpLShr:
		return bin(ir.LShr)
	case bitvec.OpAShr:
		if uint8(cw) != e.W {
			return 0, ErrUnrenderable{e.Op}
		}
		return bin(ir.AShr)
	case bitvec.OpConcat:
		// x:high, y:low at container width.
		xw := g.newReg()
		g.emit(ir.Instr{Op: ir.ZExt, W: cw, SrcW: container(e.X.W), Dst: xw, A: x})
		sh := g.constReg(cw, uint64(e.Y.W))
		shifted := g.newReg()
		g.emit(ir.Instr{Op: ir.Shl, W: cw, Dst: shifted, A: xw, B: sh})
		yw := g.newReg()
		g.emit(ir.Instr{Op: ir.ZExt, W: cw, SrcW: container(e.Y.W), Dst: yw, A: y})
		dst := g.newReg()
		g.emit(ir.Instr{Op: ir.Or, W: cw, Dst: dst, A: shifted, B: yw})
		return g.maskTo(dst, e.W), nil
	case bitvec.OpEq:
		return cmp(ir.Eq)
	case bitvec.OpNe:
		return cmp(ir.Ne)
	case bitvec.OpUlt:
		return cmp(ir.ULt)
	case bitvec.OpUle:
		return cmp(ir.ULe)
	case bitvec.OpSlt:
		return cmp(ir.SLt)
	case bitvec.OpSle:
		return cmp(ir.SLe)
	}
	return 0, ErrUnrenderable{e.Op}
}

// genRef resolves a recipient path to loads through the debug tables.
func (g *binGen) genRef(e *bitvec.Expr) (ir.Reg, error) {
	node, rest, err := parsePath(e.Name)
	if err != nil {
		return 0, err
	}
	if rest != "" {
		return 0, fmt.Errorf("phage: trailing %q in path %q", rest, e.Name)
	}
	addr, typeIdx, err := g.addrOf(node)
	if err != nil {
		return 0, err
	}
	ti := &g.mod.Types[typeIdx]
	if ti.Kind != ir.KInt {
		return 0, fmt.Errorf("phage: path %q does not end at a scalar", e.Name)
	}
	dst := g.newReg()
	g.emit(ir.Instr{Op: ir.Load, W: ti.W, Dst: dst, A: addr})
	return dst, nil
}

// pathNode is a parsed recipient path.
type pathNode struct {
	kind  byte // 'v' var, 'd' deref, 'f' field, 'i' index
	name  string
	index int64
	base  *pathNode
}

// parsePath parses the path grammar the traversal emits:
//
//	path   := base suffix*
//	base   := ident | '(' '*' path ')'
//	suffix := '.' ident | '->' ident | '[' num ']'
func parsePath(s string) (*pathNode, string, error) {
	var base *pathNode
	switch {
	case strings.HasPrefix(s, "(*"):
		inner, rest, err := parsePath(s[2:])
		if err != nil {
			return nil, "", err
		}
		if !strings.HasPrefix(rest, ")") {
			return nil, "", fmt.Errorf("phage: missing ')' in path %q", s)
		}
		base = &pathNode{kind: 'd', base: inner}
		s = rest[1:]
	default:
		i := 0
		for i < len(s) && (s[i] == '_' || s[i] >= 'a' && s[i] <= 'z' ||
			s[i] >= 'A' && s[i] <= 'Z' || i > 0 && s[i] >= '0' && s[i] <= '9') {
			i++
		}
		if i == 0 {
			return nil, "", fmt.Errorf("phage: bad path %q", s)
		}
		base = &pathNode{kind: 'v', name: s[:i]}
		s = s[i:]
	}
	for {
		switch {
		case strings.HasPrefix(s, "->"):
			base = &pathNode{kind: 'd', base: base}
			s = s[2:]
			name, rest := takeIdent(s)
			if name == "" {
				return nil, "", fmt.Errorf("phage: missing field after -> in path")
			}
			base = &pathNode{kind: 'f', name: name, base: base}
			s = rest
		case strings.HasPrefix(s, "."):
			name, rest := takeIdent(s[1:])
			if name == "" {
				return nil, "", fmt.Errorf("phage: missing field after . in path")
			}
			base = &pathNode{kind: 'f', name: name, base: base}
			s = rest
		case strings.HasPrefix(s, "["):
			end := strings.IndexByte(s, ']')
			if end < 0 {
				return nil, "", fmt.Errorf("phage: missing ']' in path")
			}
			idx, err := strconv.ParseInt(s[1:end], 10, 64)
			if err != nil {
				return nil, "", err
			}
			base = &pathNode{kind: 'i', index: idx, base: base}
			s = s[end+1:]
		default:
			return base, s, nil
		}
	}
}

func takeIdent(s string) (string, string) {
	i := 0
	for i < len(s) && (s[i] == '_' || s[i] >= 'a' && s[i] <= 'z' ||
		s[i] >= 'A' && s[i] <= 'Z' || i > 0 && s[i] >= '0' && s[i] <= '9') {
		i++
	}
	return s[:i], s[i:]
}

// addrOf emits instructions computing the address denoted by the path
// node, returning the address register and the type index of the
// addressed storage.
func (g *binGen) addrOf(n *pathNode) (ir.Reg, int32, error) {
	switch n.kind {
	case 'v':
		for _, v := range g.f.Vars {
			if v.Name == n.name {
				dst := g.newReg()
				g.emit(ir.Instr{Op: ir.FrameAddr, Dst: dst, Imm: uint64(v.Off)})
				return dst, v.Type, nil
			}
		}
		for _, v := range g.mod.GlobalVars {
			if v.Name == n.name {
				dst := g.newReg()
				g.emit(ir.Instr{Op: ir.GlobalAddr, Dst: dst, Imm: uint64(v.Off)})
				return dst, v.Type, nil
			}
		}
		return 0, 0, fmt.Errorf("phage: unknown variable %q in path", n.name)
	case 'd':
		addr, typeIdx, err := g.addrOf(n.base)
		if err != nil {
			return 0, 0, err
		}
		ti := &g.mod.Types[typeIdx]
		if ti.Kind != ir.KPtr {
			return 0, 0, fmt.Errorf("phage: dereference of non-pointer in path")
		}
		dst := g.newReg()
		g.emit(ir.Instr{Op: ir.Load, W: ir.W64, Dst: dst, A: addr})
		return dst, ti.Elem, nil
	case 'f':
		addr, typeIdx, err := g.addrOf(n.base)
		if err != nil {
			return 0, 0, err
		}
		ti := &g.mod.Types[typeIdx]
		if ti.Kind != ir.KStruct {
			return 0, 0, fmt.Errorf("phage: field access on non-struct in path")
		}
		for _, fld := range ti.Fields {
			if fld.Name == n.name {
				if fld.Off == 0 {
					return addr, fld.Type, nil
				}
				off := g.constReg(ir.W64, uint64(fld.Off))
				dst := g.newReg()
				g.emit(ir.Instr{Op: ir.Add, W: ir.W64, Dst: dst, A: addr, B: off})
				return dst, fld.Type, nil
			}
		}
		return 0, 0, fmt.Errorf("phage: no field %q in path", n.name)
	case 'i':
		addr, typeIdx, err := g.addrOf(n.base)
		if err != nil {
			return 0, 0, err
		}
		ti := &g.mod.Types[typeIdx]
		if ti.Kind != ir.KArray {
			return 0, 0, fmt.Errorf("phage: index of non-array in path")
		}
		elem := &g.mod.Types[ti.Elem]
		if n.index == 0 {
			return addr, ti.Elem, nil
		}
		off := g.constReg(ir.W64, uint64(n.index)*uint64(elem.Size))
		dst := g.newReg()
		g.emit(ir.Instr{Op: ir.Add, W: ir.W64, Dst: dst, A: addr, B: off})
		return dst, ti.Elem, nil
	}
	return 0, 0, fmt.Errorf("phage: bad path node")
}
