package pipeline

import (
	"strings"
	"testing"

	"codephage/internal/apps"
	"codephage/internal/compile"
	"codephage/internal/telemetry"
)

// TestTraceDeterministicStructure pins the telemetry contract: two
// runs of the same transfer — across fresh vs warm engines and
// sequential vs parallel candidate validation — yield identical span
// trees modulo timing. Span names and structural fields must be a pure
// function of the inputs; everything scheduling- or cache-dependent
// must live in span metrics, which Structure() excludes.
func TestTraceDeterministicStructure(t *testing.T) {
	for _, tc := range determinismRows {
		tc := tc
		t.Run(tc.recipient, func(t *testing.T) {
			tgt, err := apps.TargetByID(tc.recipient, tc.target)
			if err != nil {
				t.Fatal(err)
			}
			tr := buildTransfer(t, tgt, tc.donor)
			tr.Opts.Trace = true

			type runCfg struct {
				label   string
				workers int
			}
			cfgs := []runCfg{{"sequential-cold", 1}, {"parallel-cold", 8}, {"parallel-warm", 8}}
			var structures []string
			warmEng := &Engine{Workers: 8, Compiler: compile.NewCache(0)}
			for _, cfg := range cfgs {
				eng := warmEng
				if strings.HasSuffix(cfg.label, "-cold") {
					eng = &Engine{Workers: cfg.workers, Compiler: compile.NewCache(0)}
				}
				trCopy := *tr
				res, err := eng.Run(&trCopy)
				if err != nil {
					t.Fatalf("%s: %v", cfg.label, err)
				}
				if res.Trace == nil {
					t.Fatalf("%s: Options.Trace set but Result.Trace is nil", cfg.label)
				}
				if res.Trace.Name != "Transfer" {
					t.Fatalf("%s: root span %q, want Transfer", cfg.label, res.Trace.Name)
				}
				structures = append(structures, res.Trace.Structure())
			}
			// Warm the warm engine with one more run and compare: cache
			// hits must not leak into the structure.
			trWarm := *tr
			resWarm, err := warmEng.Run(&trWarm)
			if err != nil {
				t.Fatalf("warm rerun: %v", err)
			}
			structures = append(structures, resWarm.Trace.Structure())

			for i := 1; i < len(structures); i++ {
				if structures[i] != structures[0] {
					t.Errorf("span structure diverges between run 0 and run %d:\n--- run 0:\n%s\n--- run %d:\n%s",
						i, structures[0], i, structures[i])
				}
			}
			// The tree must contain the per-round pipeline stages.
			for _, stage := range []string{"Discover", "AnalyzePoints", "Translate", "Insert", "Validate", "Rescan"} {
				if !strings.Contains(structures[0], stage) {
					t.Errorf("trace lacks stage %s:\n%s", stage, structures[0])
				}
			}
		})
	}
}

// TestTraceOffByDefault pins that without Options.Trace and without an
// engine sink, no trace is captured.
func TestTraceOffByDefault(t *testing.T) {
	tgt, err := apps.TargetByID(determinismRows[0].recipient, determinismRows[0].target)
	if err != nil {
		t.Fatal(err)
	}
	tr := buildTransfer(t, tgt, determinismRows[0].donor)
	eng := &Engine{Compiler: compile.NewCache(0)}
	res, err := eng.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Fatal("trace captured without Options.Trace or a telemetry sink")
	}
}

// TestTelemetrySinkObservesStages pins that an engine with a sink (the
// phaged configuration) traces every transfer, feeds the per-stage
// histograms, and that histogram counts are deterministic: two engines
// running the same transfer record identical observation counts per
// stage, because counts derive from the deterministic span-tree shape.
func TestTelemetrySinkObservesStages(t *testing.T) {
	tgt, err := apps.TargetByID(determinismRows[0].recipient, determinismRows[0].target)
	if err != nil {
		t.Fatal(err)
	}
	tr := buildTransfer(t, tgt, determinismRows[0].donor)

	counts := make([]map[string]uint64, 2)
	for run := 0; run < 2; run++ {
		sink := telemetry.NewSink()
		eng := &Engine{Compiler: compile.NewCache(0), Telemetry: sink}
		trCopy := *tr
		res, err := eng.Run(&trCopy)
		if err != nil {
			t.Fatal(err)
		}
		if res.Trace == nil {
			t.Fatal("engine has a sink but captured no trace")
		}
		counts[run] = map[string]uint64{}
		for _, stage := range telemetry.Stages {
			counts[run][stage] = sink.Stage.With(stage).Count()
		}
		if run == 0 {
			for _, stage := range []string{telemetry.StageDiscover, telemetry.StageTranslate, telemetry.StageValidate, telemetry.StageRescan} {
				if counts[0][stage] == 0 {
					t.Errorf("stage %s recorded no observations", stage)
				}
			}
			// The solver histograms see the transfer's query traffic.
			var total uint64
			for _, class := range []string{"equiv.memo", "equiv.prefilter", "equiv.syntactic", "equiv.probe", "equiv.solve", "equiv.trivial", "sat.memo", "sat.probe", "sat.solve", "sat.trivial"} {
				total += sink.Solver.With(class).Count()
			}
			if total == 0 {
				t.Error("solver histograms recorded no queries")
			}
		}
	}
	for stage, c0 := range counts[0] {
		if c1 := counts[1][stage]; c1 != c0 {
			t.Errorf("stage %s: observation count %d vs %d across identical runs", stage, c0, c1)
		}
	}
}

// TestSnapshotClonesTrace pins that snapshots deep-copy the span tree.
func TestSnapshotClonesTrace(t *testing.T) {
	tgt, err := apps.TargetByID(determinismRows[0].recipient, determinismRows[0].target)
	if err != nil {
		t.Fatal(err)
	}
	tr := buildTransfer(t, tgt, determinismRows[0].donor)
	tr.Opts.Trace = true
	eng := &Engine{Compiler: compile.NewCache(0)}
	res, err := eng.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	snap := res.Snapshot()
	if snap.Trace == nil {
		t.Fatal("snapshot dropped the trace")
	}
	if snap.Trace == res.Trace {
		t.Fatal("snapshot shares the trace pointer with the result")
	}
	if snap.Trace.Structure() != res.Trace.Structure() {
		t.Fatal("snapshot trace structure differs from the result's")
	}
	snap.Trace.Name = "mutated"
	if res.Trace.Name != "Transfer" {
		t.Fatal("mutating the snapshot trace reached the result trace")
	}
}
