package pipeline

import (
	"fmt"
	"time"

	"codephage/internal/compile"
	"codephage/internal/ir"
	"codephage/internal/telemetry"
	"codephage/internal/vm"
)

// Behaviour captures the externally observable outcome of one run,
// compared bit-for-bit by the regression test (paper §3.4). It is
// exported so external oracles (the scenario conformance harness) can
// compare runs with exactly the comparison semantics the validator
// applies.
type Behaviour struct {
	exit   int32
	trap   vm.TrapKind
	output []uint64
}

// behaviour is the historical internal name.
type behaviour = Behaviour

// Observe records the behaviour of the module over each input — the
// baseline side of the §3.4 regression comparison.
func Observe(mod *ir.Module, inputs [][]byte, maxSteps int64) []Behaviour {
	return observeAll(mod, inputs, maxSteps)
}

// observeAll observes every input on one reusable runner, so repeated
// runs of the same module cost no per-run stack or globals allocation.
func observeAll(mod *ir.Module, inputs [][]byte, maxSteps int64) []behaviour {
	r := vm.NewRunner(mod)
	r.MaxSteps = maxSteps
	out := make([]behaviour, len(inputs))
	for i, input := range inputs {
		out[i] = toBehaviour(r.Run(input))
	}
	return out
}

func toBehaviour(r *vm.Result) behaviour {
	b := behaviour{exit: r.ExitCode, output: r.Output}
	if r.Trap != nil {
		b.trap = r.Trap.Kind
	}
	return b
}

// Equal reports whether two behaviours are observably identical.
func (b Behaviour) Equal(o Behaviour) bool {
	if b.exit != o.exit || b.trap != o.trap || len(b.output) != len(o.output) {
		return false
	}
	for i := range b.output {
		if b.output[i] != o.output[i] {
			return false
		}
	}
	return true
}

// String renders the behaviour for failure reports.
func (b Behaviour) String() string {
	return fmt.Sprintf("exit %d trap %v out %v", b.exit, b.trap, b.output)
}

// Validation is the outcome of the patch validation phase.
type Validation struct {
	CompileOK       bool
	ErrorEliminated bool
	RegressionOK    bool
	FailReason      string
	// Module is the validated patched module. It aliases a shared
	// compile-cache entry: treat it as immutable and Clone before any
	// in-place edit.
	Module *ir.Module
}

// OK reports full validation success.
func (v *Validation) OK() bool {
	return v.CompileOK && v.ErrorEliminated && v.RegressionOK
}

// ValidatePatch recompiles the patched recipient and subjects it to
// the paper's validation steps: the error-triggering input must no
// longer trap (the run stays under memcheck — the VM always checks),
// and the regression suite must behave exactly as the original.
func ValidatePatch(name, patchedSrc string, errIn []byte, regression [][]byte, baseline []behaviour, maxSteps int64) *Validation {
	return validatePatch(compile.Default(), name, patchedSrc, errIn, regression, baseline, maxSteps, nil)
}

// validatePatch is ValidatePatch over an explicit compile cache; the
// engine routes every candidate recompile through here. The returned
// Module is shared with the cache and must be treated as immutable.
// A non-nil sp collects child spans for the compile and the VM
// replays; their structure is a pure function of the inputs (the VM
// is deterministic), only durations and cache attribution vary.
func validatePatch(cc *compile.Cache, name, patchedSrc string, errIn []byte, regression [][]byte, baseline []behaviour, maxSteps int64, sp *telemetry.Span) *Validation {
	val := &Validation{}
	csp := sp.Child("Compile").Field("unit", "candidate")
	start := time.Now()
	mod, hit, err := cc.CompileHit(name, patchedSrc)
	csp.SetDuration(time.Since(start))
	csp.Metric("cache", cacheLabel(hit))
	if err != nil {
		csp.Field("outcome", "error")
		val.FailReason = fmt.Sprintf("compile: %v", err)
		return val
	}
	csp.Field("outcome", "ok")
	val.CompileOK = true

	runner := vm.NewRunner(mod)
	runner.MaxSteps = maxSteps
	esp := sp.Child("ReplayError")
	start = time.Now()
	r := runner.Run(errIn)
	esp.SetDuration(time.Since(start))
	if !r.OK() {
		esp.Field("outcome", "traps")
		val.FailReason = fmt.Sprintf("error input still traps: %v", r.Trap)
		return val
	}
	esp.Field("outcome", "ok")
	val.ErrorEliminated = true

	gsp := sp.Child("ReplayRegression").Fieldf("inputs", "%d", len(regression))
	start = time.Now()
	for i, input := range regression {
		got := toBehaviour(runner.Run(input))
		if !got.Equal(baseline[i]) {
			gsp.SetDuration(time.Since(start))
			gsp.Fieldf("outcome", "diverges:%d", i)
			val.FailReason = fmt.Sprintf("regression input %d diverges: exit %d/%d trap %v/%v out %v/%v",
				i, got.exit, baseline[i].exit, got.trap, baseline[i].trap, got.output, baseline[i].output)
			return val
		}
	}
	gsp.SetDuration(time.Since(start))
	gsp.Field("outcome", "ok")
	val.RegressionOK = true
	val.Module = mod
	return val
}
