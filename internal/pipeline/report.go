package pipeline

import (
	"fmt"
	"strings"
)

// Report renders a human-readable account of a completed transfer,
// one section per transferred patch, in the structure of the paper's
// per-patch write-ups (Section 4).
func (r *Result) Report(recipient, donor string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Code Phage transfer: %s <- %s\n", recipient, donor)
	fmt.Fprintf(&sb, "generation time: %s, patches: %d\n",
		r.GenTime.Round(1e6), len(r.Rounds))
	for i := range r.Rounds {
		pr := &r.Rounds[i]
		fmt.Fprintf(&sb, "\npatch %d:\n", i+1)
		fmt.Fprintf(&sb, "  relevant branch sites:   %d\n", pr.RelevantSites)
		fmt.Fprintf(&sb, "  flipped branch sites:    %d (used: #%d in execution order)\n",
			pr.FlippedSites, pr.CheckIndex+1)
		fmt.Fprintf(&sb, "  insertion points:        %d - %d unstable - %d untranslatable = %d\n",
			pr.CandidatePoints, pr.UnstablePoints, pr.Untranslatable, pr.ViablePoints)
		fmt.Fprintf(&sb, "  check size:              %d -> %d operations\n",
			pr.ExcisedOps, pr.TranslatedOps)
		fmt.Fprintf(&sb, "  excised check:           %s\n", truncateStr(pr.ExcisedCheck, 160))
		fmt.Fprintf(&sb, "  translated check:        %s\n", truncateStr(pr.TranslatedCheck, 160))
		fmt.Fprintf(&sb, "  patch (before %s:%d):    %s\n", pr.InsertFn, pr.InsertLine, pr.PatchText)
	}
	if r.OverflowFreeProven != nil {
		fmt.Fprintf(&sb, "\noverflow-freedom proven by SMT: %v\n", *r.OverflowFreeProven)
	}
	st := r.SolverStats
	fmt.Fprintf(&sb, "solver: %d queries (%d cache hits, %d prefiltered, %d refuted, %d syntactic, %d SAT calls)\n",
		st.Queries, st.CacheHits, st.Prefiltered, st.Refuted, st.Syntactic, st.SATCalls)
	return sb.String()
}

func truncateStr(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

// Diff returns a unified-style rendering of the inserted patch lines
// between the original and patched sources (insertions only — Code
// Phage never deletes recipient code).
func Diff(original, patched string) string {
	origLines := strings.Split(original, "\n")
	patchLines := strings.Split(patched, "\n")
	var sb strings.Builder
	i, j := 0, 0
	for j < len(patchLines) {
		switch {
		case i < len(origLines) && origLines[i] == patchLines[j]:
			i++
			j++
		default:
			fmt.Fprintf(&sb, "+%4d: %s\n", j+1, patchLines[j])
			j++
		}
	}
	return sb.String()
}
