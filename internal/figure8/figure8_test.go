package figure8

import (
	"testing"

	"codephage/internal/apps"
	"codephage/internal/phage"
	"codephage/internal/vm"
)

// TestFigure8AllRows is the headline experiment: every donor/recipient
// pair of the paper's Figure 8 must produce a validated transfer.
func TestFigure8AllRows(t *testing.T) {
	rows := AllRows(phage.Options{})
	if len(rows) != 18 {
		t.Fatalf("rows = %d, want 18", len(rows))
	}
	t.Logf("\n%s", FormatTable(rows))
	for _, r := range rows {
		r := r
		t.Run(r.Recipient+"/"+r.Target+"<-"+r.Donor, func(t *testing.T) {
			if r.Err != nil {
				t.Fatalf("transfer failed: %v", r.Err)
			}
			if r.UsedChecks < 1 {
				t.Fatal("no checks transferred")
			}
			// Paper: the transferred checks always came from the first
			// flipped branch.
			if !r.FirstCheck {
				t.Error("a used check was not the first flipped branch")
			}
			// W >= 1 for every patch.
			for _, ins := range r.Insert {
				if ins[3] < 1 {
					t.Errorf("no viable insertion points: %v", ins)
				}
				if ins[0]-ins[1]-ins[2] != ins[3] {
					t.Errorf("X-Y-Z != W: %v", ins)
				}
			}
			// Check-size reduction: the translated check must not grow.
			for _, cs := range r.CheckSizes {
				if cs[1] > cs[0] {
					t.Errorf("translated check larger than excised: %d -> %d", cs[0], cs[1])
				}
			}
			// The patched recipient must survive the error input and
			// keep processing the regression suite.
			tgt, err := apps.TargetByID(r.Recipient, r.Target)
			if err != nil {
				t.Fatal(err)
			}
			for _, pr := range r.Result.Rounds {
				run := vm.New(r.Result.FinalModule, pr.ErrorInput).Run()
				if !run.OK() {
					t.Errorf("patched recipient traps on a round's error input: %v", run.Trap)
				}
			}
			for i, input := range apps.RegressionSuite(tgt.Format) {
				run := vm.New(r.Result.FinalModule, input).Run()
				if !run.OK() || run.ExitCode != 0 {
					t.Errorf("patched recipient broke regression input %d: exit %d trap %v",
						i, run.ExitCode, run.Trap)
				}
			}
		})
	}
}

// TestMultiPatchRecursion checks that at least one overflow target
// needs multiple recursive patches (the paper's [X1,…,Xn] rows) and
// that single-check donors finish in one round.
func TestMultiPatchRecursion(t *testing.T) {
	tgt, err := apps.TargetByID("dillo", "png.c@203")
	if err != nil {
		t.Fatal(err)
	}
	// mtpaint bounds each dimension separately: eliminating the
	// width-driven overflow leaves a height-driven residual error, so
	// DIODE re-discovery must force a second patch.
	row := RunRow(tgt, "mtpaint", phage.Options{})
	if row.Err != nil {
		t.Fatalf("dillo<-mtpaint failed: %v", row.Err)
	}
	if row.UsedChecks < 2 {
		t.Errorf("dillo<-mtpaint used %d checks; the per-dimension donor check needs >= 2 (paper row [1,1])", row.UsedChecks)
	}
	// feh's IMAGE_DIMENSIONS_OK bounds the width*height product in one
	// check: one patch covers every overflow at the site.
	row = RunRow(tgt, "feh", phage.Options{})
	if row.Err != nil {
		t.Fatalf("dillo<-feh failed: %v", row.Err)
	}
	if row.UsedChecks != 1 {
		t.Errorf("dillo<-feh used %d checks, want 1 (product-based donor check)", row.UsedChecks)
	}
}

// TestUnstablePointFiltering: recipients whose reading code is shared
// by several callers produce unstable points that must be filtered.
func TestUnstablePointFiltering(t *testing.T) {
	rows := AllRows(phage.Options{})
	sawUnstable := false
	for _, r := range rows {
		if r.Err != nil {
			continue
		}
		for _, ins := range r.Insert {
			if ins[1] > 0 {
				sawUnstable = true
			}
		}
	}
	if !sawUnstable {
		t.Error("no unstable points filtered anywhere; the filter is untested by the workload")
	}
}

// TestOverflowFreedomVerdicts: where the SMT argument completes, the
// verdict must agree with DIODE's residual scan (which found nothing
// by the end of each transfer).
func TestOverflowFreedomVerdicts(t *testing.T) {
	tgt, err := apps.TargetByID("cwebp", "jpegdec.c@248")
	if err != nil {
		t.Fatal(err)
	}
	row := RunRow(tgt, "mtpaint", phage.Options{})
	if row.Err != nil {
		t.Fatalf("cwebp<-mtpaint failed: %v", row.Err)
	}
	if row.OverflowOK != nil && !*row.OverflowOK {
		t.Error("SMT claims overflow still possible, but DIODE found no residual error")
	}
}

// TestReturnZeroStrategy reproduces §4.5's alternate strategy: the
// Wireshark divide-by-zero patch returns 0 instead of exiting,
// enabling continued execution.
func TestReturnZeroStrategy(t *testing.T) {
	tgt, err := apps.TargetByID("wireshark14", "packet-dcp-etsi.c@258")
	if err != nil {
		t.Fatal(err)
	}
	row := RunRow(tgt, "wireshark18", phage.Options{ExitMode: phage.ReturnZero})
	if row.Err != nil {
		t.Fatalf("return-zero transfer failed: %v", row.Err)
	}
	run := vm.New(row.Result.FinalModule, row.Result.Rounds[0].ErrorInput).Run()
	if !run.OK() {
		t.Fatalf("patched wireshark still traps: %v", run.Trap)
	}
	for _, p := range row.Patches {
		if !contains(p, "return 0;") {
			t.Errorf("patch does not use the return-0 strategy: %s", p)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// TestRawModeTransfer exercises the paper's raw mode: no dissector,
// every input byte its own label. The Wireshark transfer still works —
// the donor's read of the length field matches the recipient's read of
// the same two raw bytes.
func TestRawModeTransfer(t *testing.T) {
	tgt, err := apps.TargetByID("wireshark14", "packet-dcp-etsi.c@258")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTransfer(tgt, "wireshark18", phage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tr.Format = "raw"
	res, err := tr.Run()
	if err != nil {
		t.Fatalf("raw-mode transfer failed: %v", err)
	}
	run := vm.New(res.FinalModule, tr.Error).Run()
	if !run.OK() {
		t.Fatalf("raw-mode patched wireshark still traps: %v", run.Trap)
	}
	// The excised check references raw byte labels, not field paths.
	if !contains(res.Rounds[0].ExcisedCheck, "@7") && !contains(res.Rounds[0].ExcisedCheck, "@8") {
		t.Errorf("raw-mode excised check has no byte labels: %s", res.Rounds[0].ExcisedCheck)
	}
}
