// Package figure8 reproduces the paper's evaluation: it drives the
// complete Code Phage pipeline for every donor/recipient row of
// Figure 8, collecting the table's columns (generation time, relevant
// and flipped branch counts, used checks, candidate insertion point
// arithmetic X−Y−Z=W, and excised→translated check sizes).
package figure8

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"codephage/internal/apps"
	"codephage/internal/diode"
	"codephage/internal/fuzz"
	"codephage/internal/hachoir"
	"codephage/internal/ir"
	"codephage/internal/phage"
	"codephage/internal/pipeline"
	"codephage/internal/smt"
)

// Row is one Figure 8 table row.
type Row struct {
	Recipient string
	Target    string
	Donor     string
	Kind      apps.ErrorKind

	GenTime    time.Duration
	Relevant   int
	Flipped    []int // per transferred patch
	UsedChecks int
	Insert     [][4]int // per patch: X, Y, Z, W
	CheckSizes [][2]int // per patch: excised ops -> translated ops
	Patches    []string
	FirstCheck bool  // every used check was the first flipped branch
	OverflowOK *bool // SMT overflow-freedom verdict (overflow rows)
	Result     *phage.Result
	Err        error
}

// errInput memoises one target's discovered error input.
type errInput struct {
	input []byte
	err   error
}

var (
	errInputMu   sync.Mutex
	errInputMemo = map[string]errInput{}
)

// ErrorInputFor obtains the error-triggering input for a target: from
// the registry CVE-style catalogue, by fuzzing (OOB), or from DIODE
// (integer overflows), mirroring the paper's methodology (§4.1).
// Discovery results are memoised per target, so every donor evaluated
// against the same error shares one DIODE/fuzzing run.
func ErrorInputFor(tgt *apps.Target) ([]byte, error) {
	return errorInputFor(tgt, nil)
}

// errorInputFor is ErrorInputFor over an explicit constraint service
// for DIODE's discovery queries (nil = the process default);
// NewTransfer threads Options.Service through so the phaged request
// path runs discovery on the server's shared service. The discovered
// input is memoised per target — the service only affects where the
// first discovery's verdicts are cached, never the input found.
func errorInputFor(tgt *apps.Target, svc *smt.Service) ([]byte, error) {
	if tgt.Error != nil {
		// Catalogued (and generated) error inputs need no discovery and
		// no memo entry — scenario soaks stream thousands of one-shot
		// registered targets through here.
		return tgt.Error, nil
	}
	errInputMu.Lock()
	memo, ok := errInputMemo[tgt.Recipient+"\x00"+tgt.ID]
	errInputMu.Unlock()
	if ok {
		return memo.input, memo.err
	}
	input, err := discoverErrorInput(tgt, svc)
	errInputMu.Lock()
	errInputMemo[tgt.Recipient+"\x00"+tgt.ID] = errInput{input: input, err: err}
	errInputMu.Unlock()
	return input, err
}

func discoverErrorInput(tgt *apps.Target, svc *smt.Service) ([]byte, error) {
	recipient, err := apps.ByName(tgt.Recipient)
	if err != nil {
		return nil, err
	}
	mod, err := apps.Build(recipient)
	if err != nil {
		return nil, err
	}
	d, ok := hachoir.ByName(tgt.Format)
	if !ok {
		return nil, fmt.Errorf("figure8: no dissector %q", tgt.Format)
	}
	dis, err := d.Dissect(tgt.Seed)
	if err != nil {
		return nil, err
	}
	switch tgt.Kind {
	case apps.Overflow:
		f, err := diode.Discover(mod, tgt.Seed, dis, diode.Options{VulnFn: tgt.VulnFn, Service: svc})
		if err != nil {
			return nil, err
		}
		if f == nil {
			return nil, fmt.Errorf("figure8: DIODE found no overflow at %s/%s", tgt.Recipient, tgt.ID)
		}
		return f.Input, nil
	default:
		if c := fuzz.Find(mod, tgt.Seed, dis, fuzz.Options{}); c != nil {
			return c.Input, nil
		}
		return nil, fmt.Errorf("figure8: fuzzing found no error at %s/%s", tgt.Recipient, tgt.ID)
	}
}

// NewTransfer assembles the phage.Transfer for one table row. The
// donor name pipeline.AutoDonor ("auto") yields an auto-donor
// transfer (nil Donor): the engine's Select stage resolves the donor
// from its configured knowledge base.
func NewTransfer(tgt *apps.Target, donorName string, opts phage.Options) (*phage.Transfer, error) {
	recipient, err := apps.ByName(tgt.Recipient)
	if err != nil {
		return nil, err
	}
	var donorBin *ir.Module
	if donorName == pipeline.AutoDonor {
		donorName = ""
	} else {
		donorApp, err := apps.ByName(donorName)
		if err != nil {
			return nil, err
		}
		donorBin, err = apps.BuildDonorBinary(donorApp)
		if err != nil {
			return nil, err
		}
	}
	errIn, err := errorInputFor(tgt, opts.Service)
	if err != nil {
		return nil, err
	}
	vulnFn := ""
	if tgt.Kind == apps.Overflow {
		vulnFn = tgt.VulnFn
	}
	return &phage.Transfer{
		RecipientName: tgt.Recipient,
		RecipientSrc:  recipient.Source,
		TargetID:      tgt.ID,
		Donor:         donorBin,
		DonorName:     donorName,
		Format:        tgt.Format,
		Seed:          tgt.Seed,
		Error:         errIn,
		Regression:    apps.RegressionSuite(tgt.Format),
		VulnFn:        vulnFn,
		Opts:          opts,
	}, nil
}

// RunRow executes one donor/recipient pair end to end through the
// default engine.
func RunRow(tgt *apps.Target, donorName string, opts phage.Options) *Row {
	row := &Row{Recipient: tgt.Recipient, Target: tgt.ID, Donor: donorName, Kind: tgt.Kind}
	tr, err := NewTransfer(tgt, donorName, opts)
	if err != nil {
		row.Err = err
		return row
	}
	res, err := tr.Run()
	if err != nil {
		row.Err = err
		return row
	}
	row.fill(res)
	return row
}

// fill derives the Figure 8 columns from a transfer result.
func (row *Row) fill(res *phage.Result) {
	row.Result = res
	if res.Donor != "" {
		// For auto-donor rows this replaces "auto" with the donor the
		// Select stage resolved; for explicit rows it is a no-op.
		row.Donor = res.Donor
	}
	row.GenTime = res.GenTime
	row.UsedChecks = res.UsedChecks()
	row.FirstCheck = true
	row.OverflowOK = res.OverflowFreeProven
	for _, pr := range res.Rounds {
		if row.Relevant == 0 {
			row.Relevant = pr.RelevantSites
		}
		row.Flipped = append(row.Flipped, pr.FlippedSites)
		row.Insert = append(row.Insert, [4]int{
			pr.CandidatePoints, pr.UnstablePoints, pr.Untranslatable, pr.ViablePoints,
		})
		row.CheckSizes = append(row.CheckSizes, [2]int{pr.ExcisedOps, pr.TranslatedOps})
		row.Patches = append(row.Patches, pr.PatchText)
		if pr.CheckIndex != 0 {
			row.FirstCheck = false
		}
	}
}

// AllRows runs every donor/recipient pair of the target catalogue —
// the complete Figure 8 experiment — as one batched workload over a
// shared engine. Rows run concurrently, so each Row.GenTime is
// wall-clock under contention; for per-row times comparable to the
// paper's fully sequential methodology, use BatchRows with a
// Workers: 1 batch over an Engine whose Workers is also 1 (otherwise
// candidate validation inside each row still fans out).
func AllRows(opts phage.Options) []*Row {
	rows, _ := BatchRows(opts, nil)
	return rows
}

// BatchRows runs the complete Figure 8 catalogue through the given
// batch (nil = a default batch over the default engine): transfers run
// concurrently, error-input discovery is shared per target, and the
// compile, baseline and solver state is shared across rows. Rows come
// back in catalogue order.
func BatchRows(opts phage.Options, batch *pipeline.Batch) ([]*Row, pipeline.BatchStats) {
	if batch == nil {
		batch = &pipeline.Batch{Engine: pipeline.DefaultEngine()}
	}
	var rows []*Row
	var tasks []pipeline.BatchTask
	var taskRow []int // task index -> row index
	for _, tgt := range apps.Targets() {
		for _, donor := range tgt.Donors {
			row := &Row{Recipient: tgt.Recipient, Target: tgt.ID, Donor: donor, Kind: tgt.Kind}
			rows = append(rows, row)
			tr, err := NewTransfer(tgt, donor, opts)
			if err != nil {
				row.Err = err
				continue
			}
			tasks = append(tasks, pipeline.BatchTask{
				ID:       fmt.Sprintf("%s/%s<-%s", tgt.Recipient, tgt.ID, donor),
				Transfer: tr,
			})
			taskRow = append(taskRow, len(rows)-1)
		}
	}
	results, stats := batch.Run(tasks)
	for i, br := range results {
		row := rows[taskRow[i]]
		if br.Err != nil {
			row.Err = br.Err
			continue
		}
		row.fill(br.Result)
	}
	return rows, stats
}

// FlippedString renders the flipped-branch column ("5" or "[1,1]").
func (r *Row) FlippedString() string { return bracketed(r.Flipped) }

// InsertString renders the insertion point column ("38-2-31=5 …").
func (r *Row) InsertString() string {
	parts := make([]string, len(r.Insert))
	for i, s := range r.Insert {
		parts[i] = fmt.Sprintf("%d-%d-%d=%d", s[0], s[1], s[2], s[3])
	}
	return strings.Join(parts, " ")
}

// SizeString renders the check size column ("57->4" or "[(18->1),(18->1)]").
func (r *Row) SizeString() string {
	if len(r.CheckSizes) == 1 {
		return fmt.Sprintf("%d->%d", r.CheckSizes[0][0], r.CheckSizes[0][1])
	}
	parts := make([]string, len(r.CheckSizes))
	for i, s := range r.CheckSizes {
		parts[i] = fmt.Sprintf("(%d->%d)", s[0], s[1])
	}
	return "[" + strings.Join(parts, ",") + "]"
}

func bracketed(vals []int) string {
	if len(vals) == 1 {
		return fmt.Sprintf("%d", vals[0])
	}
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return "[" + strings.Join(parts, ",") + "]"
}

// FormatTable renders rows in the layout of Figure 8.
func FormatTable(rows []*Row) string { return formatTable(rows, true) }

// FormatTableNoTimes renders the same table with the wall-time column
// blanked: every remaining column is a pure function of the inputs and
// the verdicts, so two runs' output can be compared byte-for-byte
// (across portfolio configurations, warm or cold memo, worker counts).
func FormatTableNoTimes(rows []*Row) string { return formatTable(rows, false) }

func formatTable(rows []*Row, times bool) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %-24s %-12s %9s %9s %9s %7s %-16s %s\n",
		"Recipient", "Target", "Donor", "Time", "Relevant", "Flipped", "Checks", "Insertion Pts", "Check Size")
	for _, r := range rows {
		if r.Err != nil {
			fmt.Fprintf(&sb, "%-12s %-24s %-12s FAILED: %v\n", r.Recipient, r.Target, r.Donor, r.Err)
			continue
		}
		t := "-"
		if times {
			t = r.GenTime.Round(time.Millisecond).String()
		}
		fmt.Fprintf(&sb, "%-12s %-24s %-12s %9s %9d %9s %7d %-16s %s\n",
			r.Recipient, r.Target, r.Donor, t,
			r.Relevant, r.FlippedString(), r.UsedChecks,
			r.InsertString(), r.SizeString())
	}
	return sb.String()
}
