// Auto-selection cross-check: the corpus answers "which donor?" for
// every Figure 8 error, and this file compares its answer against the
// paper's donor table — the evaluation that backs `figure8 -autocheck`
// and the corpus acceptance tests.
package figure8

import (
	"fmt"
	"strings"

	"codephage/internal/apps"
	"codephage/internal/corpus"
)

// AutoSelectRow is one target's auto-selection outcome next to the
// paper's evaluated donors.
type AutoSelectRow struct {
	Recipient   string
	Target      string
	Format      string
	PaperDonors []string
	Ranked      []corpus.Candidate
	Rejected    []corpus.Candidate
	Selected    string // rank-1 donor ("" on error)
	Agrees      bool   // Selected is one of PaperDonors
	Err         error
}

// AutoSelectRows runs automatic donor selection for every Figure 8
// target through the given selector (nil = a fresh in-memory selector
// over the registry) and cross-checks each answer against the paper's
// donor table.
func AutoSelectRows(sel *corpus.Selector) []*AutoSelectRow {
	if sel == nil {
		sel = corpus.NewSelector("")
	}
	var rows []*AutoSelectRow
	for _, tgt := range apps.Targets() {
		row := &AutoSelectRow{
			Recipient:   tgt.Recipient,
			Target:      tgt.ID,
			Format:      tgt.Format,
			PaperDonors: tgt.Donors,
		}
		rows = append(rows, row)
		errIn, err := ErrorInputFor(tgt)
		if err != nil {
			row.Err = err
			continue
		}
		selection, err := sel.Select(tgt.Format, tgt.Seed, errIn)
		if err != nil {
			row.Err = err
			continue
		}
		row.Ranked = selection.Ranked
		row.Rejected = selection.Rejected
		if len(selection.Ranked) == 0 {
			row.Err = fmt.Errorf("no donor survives the error input")
			continue
		}
		row.Selected = selection.Ranked[0].Donor
		for _, d := range tgt.Donors {
			if d == row.Selected {
				row.Agrees = true
			}
		}
	}
	return rows
}

// FormatAutoSelectTable renders the cross-check as a table.
func FormatAutoSelectTable(rows []*AutoSelectRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %-24s %-8s %-12s %-24s %s\n",
		"Recipient", "Target", "Format", "Selected", "Paper Donors", "Agrees")
	for _, r := range rows {
		if r.Err != nil {
			fmt.Fprintf(&sb, "%-12s %-24s %-8s FAILED: %v\n", r.Recipient, r.Target, r.Format, r.Err)
			continue
		}
		var ranked []string
		for _, c := range r.Ranked {
			ranked = append(ranked, fmt.Sprintf("%s(%d)", c.Donor, c.CheckHits))
		}
		fmt.Fprintf(&sb, "%-12s %-24s %-8s %-12s %-24s %v  ranking: %s\n",
			r.Recipient, r.Target, r.Format, r.Selected,
			strings.Join(r.PaperDonors, ","), r.Agrees, strings.Join(ranked, " > "))
	}
	return sb.String()
}
