package diode

import (
	"testing"

	"codephage/internal/apps"
	"codephage/internal/bitvec"
	"codephage/internal/hachoir"
	"codephage/internal/smt"
	"codephage/internal/vm"
)

func dissect(t *testing.T, format string, input []byte) *hachoir.Dissection {
	t.Helper()
	d, ok := hachoir.ByName(format)
	if !ok {
		t.Fatalf("no dissector %q", format)
	}
	dis, err := d.Dissect(input)
	if err != nil {
		t.Fatal(err)
	}
	return dis
}

func TestWidenDetectsWrap(t *testing.T) {
	w := bitvec.Field("w", 16, 0)
	h := bitvec.Field("h", 16, 2)
	size := bitvec.Mul(bitvec.Mul(bitvec.ZExt(32, w), bitvec.ZExt(32, h)), bitvec.Const(32, 4))
	wide := Widen(size)
	env := bitvec.MapEnv{Fields: map[string]uint64{"w": 0xFFFF, "h": 0xFFFF}}
	nv, err := bitvec.Eval(size, env)
	if err != nil {
		t.Fatal(err)
	}
	wv, err := bitvec.Eval(wide, env)
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(0xFFFF) * 0xFFFF * 4
	if wv != want {
		t.Errorf("wide = %d, want %d", wv, want)
	}
	if nv == wv {
		t.Error("narrow evaluation did not wrap")
	}
	if nv != want&0xFFFFFFFF {
		t.Errorf("narrow = %d, want %d", nv, want&0xFFFFFFFF)
	}
}

func TestWidenAgreesWhenNoWrap(t *testing.T) {
	w := bitvec.Field("w", 16, 0)
	size := bitvec.Add(bitvec.ZExt(32, w), bitvec.Const(32, 3))
	wide := Widen(size)
	for _, v := range []uint64{0, 1, 100, 0xFFFF} {
		env := bitvec.MapEnv{Fields: map[string]uint64{"w": v}}
		nv, _ := bitvec.Eval(size, env)
		wv, _ := bitvec.Eval(wide, env)
		if nv != wv {
			t.Errorf("w=%d: narrow %d != wide %d without overflow", v, nv, wv)
		}
	}
}

func TestOverflowCondSatisfiableForVulnerableSize(t *testing.T) {
	w := bitvec.Field("w", 32, 0)
	h := bitvec.Field("h", 32, 4)
	size := bitvec.Mul(bitvec.Mul(w, h), bitvec.Const(32, 4))
	cond := OverflowCond(size, 1<<20)
	s := smt.NewService(smt.Config{}).Session()
	ok, m, err := s.Sat(cond)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("overflow condition unsatisfiable for w*h*4")
	}
	// Verify the model actually wraps.
	env := bitvec.MapEnv{Fields: map[string]uint64(m)}
	nv, _ := bitvec.Eval(size, env)
	wv, _ := bitvec.Eval(Widen(size), env)
	if nv == wv || nv == 0 || nv >= 1<<20 {
		t.Errorf("model does not satisfy the goal: narrow=%d wide=%d", nv, wv)
	}
}

func TestOverflowCondUnsatisfiableUnderGuard(t *testing.T) {
	// With both dimensions bounded (the mtpaint-style per-dimension
	// check), the product cannot overflow. Small widths keep the UNSAT
	// multiplier proof within the SAT budget: w, h are 8-bit, bounded
	// by 100, size is w*h*4 at 16 bits (max 40000 < 2^16).
	w := bitvec.Field("w", 8, 0)
	h := bitvec.Field("h", 8, 1)
	size := bitvec.Mul(bitvec.Mul(bitvec.ZExt(16, w), bitvec.ZExt(16, h)), bitvec.Const(16, 4))
	guard := bitvec.And(
		bitvec.Ule(w, bitvec.Const(8, 100)),
		bitvec.Ule(h, bitvec.Const(8, 100)))
	cond := bitvec.And(guard, OverflowCond(size, 1<<20))
	s := smt.NewService(smt.Config{}).Session()
	ok, m, err := s.Sat(cond)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("overflow possible under the guard: model %v", m)
	}
	// Without the guard the same size expression overflows.
	ok, _, err = s.Sat(OverflowCond(size, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("unguarded 16-bit w*h*4 must overflow")
	}
}

func TestDiscoverCWebPOverflow(t *testing.T) {
	app, err := apps.ByName("cwebp")
	if err != nil {
		t.Fatal(err)
	}
	mod, err := apps.Build(app)
	if err != nil {
		t.Fatal(err)
	}
	seed := apps.SeedMJPG()
	dis := dissect(t, "mjpg", seed)
	f, err := Discover(mod, seed, dis, Options{VulnFn: "read_jpeg"})
	if err != nil {
		t.Fatal(err)
	}
	if f == nil {
		t.Fatal("DIODE found no overflow in cwebp (there is one)")
	}
	if f.FnName != "read_jpeg" {
		t.Errorf("site in %s, want read_jpeg", f.FnName)
	}
	if f.Trap == nil || (f.Trap.Kind != vm.TrapOOBWrite && f.Trap.Kind != vm.TrapOOBRead) {
		t.Errorf("confirming trap = %v, want OOB", f.Trap)
	}
	if f.Narrow >= f.Wide {
		t.Errorf("no wrap: narrow=%d wide=%d", f.Narrow, f.Wide)
	}
	// The error input must still be a valid MJPG the donors survive.
	for _, dn := range []string{"feh", "mtpaint", "viewnior"} {
		donor, _ := apps.ByName(dn)
		dm, err := apps.Build(donor)
		if err != nil {
			t.Fatal(err)
		}
		r := vm.New(dm, f.Input).Run()
		if !r.OK() {
			t.Errorf("donor %s crashes on the DIODE input: %v", dn, r.Trap)
		}
	}
}

func TestDiscoverAllOverflowTargets(t *testing.T) {
	for _, tgt := range apps.Targets() {
		if tgt.Kind != apps.Overflow {
			continue
		}
		tgt := tgt
		t.Run(tgt.Recipient+"/"+tgt.ID, func(t *testing.T) {
			app, err := apps.ByName(tgt.Recipient)
			if err != nil {
				t.Fatal(err)
			}
			mod, err := apps.Build(app)
			if err != nil {
				t.Fatal(err)
			}
			dis := dissect(t, tgt.Format, tgt.Seed)
			f, err := Discover(mod, tgt.Seed, dis, Options{VulnFn: tgt.VulnFn})
			if err != nil {
				t.Fatal(err)
			}
			if f == nil {
				t.Fatalf("no overflow found at %s", tgt.VulnFn)
			}
			if f.FnName != tgt.VulnFn {
				t.Errorf("found site in %s, want %s", f.FnName, tgt.VulnFn)
			}
		})
	}
}

func TestDiscoverFindsNothingInDonor(t *testing.T) {
	// feh's IMAGE_DIMENSIONS_OK makes its allocation sizes safe; DIODE
	// must come up empty.
	donor, err := apps.ByName("feh")
	if err != nil {
		t.Fatal(err)
	}
	mod, err := apps.Build(donor)
	if err != nil {
		t.Fatal(err)
	}
	seed := apps.SeedMJPG()
	dis := dissect(t, "mjpg", seed)
	f, err := Discover(mod, seed, dis, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if f != nil {
		t.Fatalf("DIODE claims an overflow in feh: %v", f)
	}
}

func TestMutateFields(t *testing.T) {
	seed := apps.SeedMJPG()
	dis := dissect(t, "mjpg", seed)
	out := MutateFields(seed, dis, map[string]uint64{
		"/start_frame/content/width":  0xABCD,
		"/start_frame/content/height": 0x1234,
	})
	vals := dis.FieldValues(out)
	if vals["/start_frame/content/width"] != 0xABCD {
		t.Errorf("width = %#x", vals["/start_frame/content/width"])
	}
	if vals["/start_frame/content/height"] != 0x1234 {
		t.Errorf("height = %#x", vals["/start_frame/content/height"])
	}
	// Untouched fields preserved.
	if vals["/start_frame/components"] != 3 {
		t.Errorf("components = %d, want 3", vals["/start_frame/components"])
	}
	// Original input unmodified.
	if dis.FieldValues(seed)["/start_frame/content/width"] != 100 {
		t.Error("MutateFields modified its input")
	}
}

func TestTaintedAllocSites(t *testing.T) {
	app, _ := apps.ByName("dillo")
	mod, err := apps.Build(app)
	if err != nil {
		t.Fatal(err)
	}
	seed := apps.SeedMPNG()
	dis := dissect(t, "mpng", seed)
	allocs, res := TaintedAllocSites(mod, seed, dis, 0)
	if !res.OK() {
		t.Fatalf("seed run trapped: %v", res.Trap)
	}
	if len(allocs) != 2 {
		t.Fatalf("tainted alloc sites = %d, want 2 (png.c and fltkimagebuf)", len(allocs))
	}
}
