// Package diode reimplements the role of the DIODE integer-overflow
// discovery system (Sidiroglou-Douskos et al., ASPLOS 2015) for the
// Code Phage pipeline: given an application and a seed input, it finds
// inputs that cause the size computation at a memory allocation site to
// overflow its 32-bit evaluation, producing the seed/error input pairs
// that drive patch transfer, and re-scans patched binaries for residual
// errors (driving CP's multi-patch recursion).
//
// The original DIODE performs goal-directed branch enforcement with an
// SMT solver over extracted path constraints. This implementation
// keeps DIODE's observable behaviour — taint the allocation-site size
// expression, solve for field values that wrap it, mutate the seed,
// confirm the error by re-execution — but searches the (small) field
// corner space concretely instead of solving path constraints, which
// suffices for header-field-driven allocation sizes.
package diode

import (
	"fmt"
	"math/rand"

	"codephage/internal/bitvec"
	"codephage/internal/hachoir"
	"codephage/internal/ir"
	"codephage/internal/smt"
	"codephage/internal/taint"
	"codephage/internal/vm"
)

// Finding is one discovered integer-overflow error.
type Finding struct {
	Input    []byte // the error-triggering input
	Fn       int32  // allocation site
	PC       int32
	Line     int32
	FnName   string
	SizeExpr *bitvec.Expr      // symbolic allocation size (32-bit)
	Fields   map[string]uint64 // field assignment that wraps the size
	Narrow   uint64            // wrapped 32-bit size under Fields
	Wide     uint64            // true 64-bit size under Fields
	Trap     *vm.Trap          // the confirming trap
}

func (f *Finding) String() string {
	return fmt.Sprintf("overflow at %s+%d (line %d): size wraps to %d (true %d)",
		f.FnName, f.PC, f.Line, f.Narrow, f.Wide)
}

// Options configures discovery.
type Options struct {
	// VulnFn restricts allocation sites to the named function ("" =
	// all sites). Requires an unstripped module.
	VulnFn string
	// MaxSteps bounds each VM run.
	MaxSteps int64
	// MaxWrapped is the largest wrapped size considered (must remain
	// allocatable so the downstream out-of-bounds write manifests).
	MaxWrapped uint64
	// Seed for the random probe stream.
	RandSeed int64
	// Service is the shared constraint service used to prove
	// un-wrappable allocation sites unsatisfiable before the concrete
	// search runs (nil = the process-wide smt.Default()). Verdicts are
	// memoised per size expression, so residual rescans of patched
	// builds — which re-taint the same allocation sites every round —
	// skip straight past sites proven overflow-free.
	Service *smt.Service
}

func (o *Options) maxWrapped() uint64 {
	if o.MaxWrapped > 0 {
		return o.MaxWrapped
	}
	return 1 << 20
}

func (o *Options) service() *smt.Service {
	if o.Service != nil {
		return o.Service
	}
	return smt.Default()
}

// prefilterConflictBudget bounds each per-site unsatisfiability proof.
const prefilterConflictBudget = 4000

// Widen rewrites a size expression to compute without 32-bit wrapping:
// leaves are zero-extended to 64 bits and arithmetic happens at width
// 64, while explicit truncations/extracts retain their masking. The
// overflow condition is Widen(e) != ZExt64(e).
func Widen(e *bitvec.Expr) *bitvec.Expr {
	switch e.Op {
	case bitvec.OpConst:
		return bitvec.Const(64, e.Val)
	case bitvec.OpField:
		return bitvec.ZExt(64, bitvec.Field(e.Name, e.W, e.Off))
	case bitvec.OpZExt:
		return Widen(e.X)
	case bitvec.OpSExt:
		// Sign extension of a narrower value: evaluate the inner value
		// at its own width, then sign-extend within 64 bits.
		inner := narrowTo(Widen(e.X), e.X.W)
		if e.X.W == 64 {
			return inner
		}
		sign := bitvec.Extract(e.X.W-1, e.X.W-1, inner)
		ones := bitvec.Const(64, ^uint64(0)<<e.X.W)
		extended := bitvec.Or(inner, ones)
		return bitvec.Ite(bitvec.BoolOf(sign), extended, inner)
	case bitvec.OpExtr:
		inner := narrowTo(Widen(e.X), e.X.W)
		shifted := bitvec.LShr(inner, bitvec.Const(64, uint64(e.Lo)))
		return bitvec.And(shifted, bitvec.Const(64, bitvec.Mask(e.W)))
	case bitvec.OpAdd, bitvec.OpSub, bitvec.OpMul, bitvec.OpUDiv,
		bitvec.OpURem, bitvec.OpAnd, bitvec.OpOr, bitvec.OpXor,
		bitvec.OpShl, bitvec.OpLShr:
		x, y := Widen(e.X), Widen(e.Y)
		return rebuildBin(e.Op, x, y)
	case bitvec.OpConcat:
		hi := narrowTo(Widen(e.X), e.X.W)
		lo := narrowTo(Widen(e.Y), e.Y.W)
		sh := bitvec.Shl(hi, bitvec.Const(64, uint64(e.Y.W)))
		return bitvec.Or(sh, lo)
	}
	// Comparisons, Ite, everything else: keep original semantics and
	// zero-extend (these cannot overflow).
	return bitvec.ZExt(64, e)
}

func narrowTo(wide *bitvec.Expr, w uint8) *bitvec.Expr {
	if w >= 64 {
		return wide
	}
	return bitvec.And(wide, bitvec.Const(64, bitvec.Mask(w)))
}

func rebuildBin(op bitvec.Op, x, y *bitvec.Expr) *bitvec.Expr {
	switch op {
	case bitvec.OpAdd:
		return bitvec.Add(x, y)
	case bitvec.OpSub:
		return bitvec.Sub(x, y)
	case bitvec.OpMul:
		return bitvec.Mul(x, y)
	case bitvec.OpUDiv:
		return bitvec.UDiv(x, y)
	case bitvec.OpURem:
		return bitvec.URem(x, y)
	case bitvec.OpAnd:
		return bitvec.And(x, y)
	case bitvec.OpOr:
		return bitvec.Or(x, y)
	case bitvec.OpXor:
		return bitvec.Xor(x, y)
	case bitvec.OpShl:
		return bitvec.Shl(x, y)
	case bitvec.OpLShr:
		return bitvec.LShr(x, y)
	}
	panic("diode: rebuildBin: bad op")
}

// OverflowCond returns the width-1 condition "the 32-bit evaluation of
// size wraps and the wrapped value stays below maxWrapped" — the goal
// DIODE directs its input search toward, and the condition the patch
// validation phase proves unsatisfiable under a transferred check.
func OverflowCond(size *bitvec.Expr, maxWrapped uint64) *bitvec.Expr {
	wide := Widen(size)
	narrow := bitvec.ZExt(64, size)
	wraps := bitvec.Ne(narrow, wide)
	small := bitvec.Ult(narrow, bitvec.Const(64, maxWrapped))
	nonzero := bitvec.Ne(narrow, bitvec.Const(64, 0))
	and1 := bitvec.And(wraps, small)
	return bitvec.And(and1, nonzero)
}

// TaintedAllocSites runs the module on the input under the taint
// tracker and returns the allocation records whose sizes depend on
// input bytes.
func TaintedAllocSites(mod *ir.Module, input []byte, dis *hachoir.Dissection, maxSteps int64) ([]taint.AllocRecord, *vm.Result) {
	tr := taint.NewTracker(mod, taint.Options{Labels: dis})
	v := vm.New(mod, input)
	v.Tracer = tr
	v.MaxSteps = maxSteps
	res := v.Run()
	var out []taint.AllocRecord
	for _, a := range tr.Allocs() {
		if a.SizeExpr != nil {
			out = append(out, a)
		}
	}
	return out, res
}

// Discover searches for an input that triggers an integer-overflow
// error at an allocation site of the module. It returns nil (no error)
// when no overflow-triggering input can be found — the signal that a
// patched recipient has no residual errors.
func Discover(mod *ir.Module, seed []byte, dis *hachoir.Dissection, opts Options) (*Finding, error) {
	allocs, res := TaintedAllocSites(mod, seed, dis, opts.MaxSteps)
	if !res.OK() {
		return nil, fmt.Errorf("diode: seed input already crashes: %v", res.Trap)
	}
	session := opts.service().Session()
	// The prefilter proof gets a small conflict budget: cheap UNSAT
	// proofs (narrow fields, masked sizes) land well inside it, while
	// hard ones exhaust it, skip the memo, and fall through to the
	// concrete search — so a cold site never costs more than a
	// bounded solver call on top of what the search already paid.
	session.MaxConflicts = prefilterConflictBudget

	for ai, a := range allocs {
		fnName := mod.Funcs[a.Fn].Name
		if opts.VulnFn != "" && fnName != opts.VulnFn {
			continue
		}
		// Solver prefilter: a site whose overflow condition is
		// unsatisfiable cannot wrap for any field assignment, so the
		// concrete corner/random search below would come up empty —
		// skip it. The verdict is memoised in the shared service, so
		// every rescan round and every batch task re-observing this
		// site answers in O(1). Sat or budget-exhausted verdicts fall
		// through to the search unchanged; with the probe stream
		// seeded per site (below), the skip is output-neutral: it only
		// elides provably empty searches and never perturbs another
		// site's candidates.
		cond := OverflowCond(a.SizeExpr, opts.maxWrapped())
		if sat, _, err := session.Sat(cond); err == nil && !sat {
			continue
		}
		rng := rand.New(rand.NewSource(opts.RandSeed + 0xD10DE + int64(ai)*0x9E3779B9))
		for _, cand := range searchWrap(a.SizeExpr, dis, seed, opts.maxWrapped(), rng) {
			input := MutateFields(seed, dis, cand.assign)
			v := vm.New(mod, input)
			v.MaxSteps = opts.MaxSteps
			r := v.Run()
			if r.OK() || r.Trap.Kind == vm.TrapStepLimit {
				continue // wrapped but did not manifest; try other candidates
			}
			return &Finding{
				Input: input, Fn: a.Fn, PC: a.PC, Line: a.Line, FnName: fnName,
				SizeExpr: a.SizeExpr, Fields: cand.assign,
				Narrow: cand.narrow, Wide: cand.wide, Trap: r.Trap,
			}, nil
		}
	}
	return nil, nil
}

// candidate is one field assignment that wraps a size expression.
type candidate struct {
	assign map[string]uint64
	narrow uint64
	wide   uint64
}

// searchWrap collects field assignments wrapping the size expression:
// corner-value enumeration (including each field's seed value, so
// validated fields like component counts can stay legal) followed by
// random probing. Non-size fields keep their seed values.
func searchWrap(size *bitvec.Expr, dis *hachoir.Dissection, seed []byte, maxWrapped uint64, rng *rand.Rand) []candidate {
	const maxCandidates = 64
	seedVals := dis.FieldValues(seed)
	names := size.Fields()
	if len(names) == 0 || len(names) > 6 {
		return nil
	}
	widths := map[string]uint8{}
	size.Walk(func(n *bitvec.Expr) {
		if n.Op == bitvec.OpField {
			widths[n.Name] = n.W
		}
	})
	wide := Widen(size)

	var found []candidate
	try := func(assign map[string]uint64) {
		env := bitvec.MapEnv{Fields: map[string]uint64{}}
		for k, v := range seedVals {
			env.Fields[k] = v
		}
		for k, v := range assign {
			env.Fields[k] = v
		}
		nv, err1 := bitvec.Eval(size, env)
		wv, err2 := bitvec.Eval(wide, env)
		if err1 != nil || err2 != nil {
			return
		}
		if nv != wv && nv > 0 && nv < maxWrapped {
			found = append(found, candidate{assign: assign, narrow: nv, wide: wv})
		}
	}

	corners := func(name string) []uint64 {
		w := widths[name]
		m := bitvec.Mask(w)
		out := []uint64{seedVals[name], m, m - 1, m >> 1, m>>1 + 1, m - 255,
			1 << (w - 1), 4, 3, 2, 1}
		for i := range out {
			out[i] &= m
		}
		return out
	}

	// Corner product enumeration, capped.
	total := 1
	for _, n := range names {
		total *= len(corners(n))
		if total >= 1<<16 {
			total = 1 << 16
			break
		}
	}
	for idx := 0; idx < total && len(found) < maxCandidates; idx++ {
		assign := map[string]uint64{}
		rem := idx
		for _, n := range names {
			cs := corners(n)
			assign[n] = cs[rem%len(cs)]
			rem /= len(cs)
		}
		try(assign)
	}
	// Random probing: full-random and seed-anchored (mutate a subset).
	for i := 0; i < 30000 && len(found) < maxCandidates; i++ {
		assign := map[string]uint64{}
		for _, n := range names {
			if i%2 == 1 && rng.Intn(2) == 0 {
				assign[n] = seedVals[n]
			} else {
				assign[n] = rng.Uint64() & bitvec.Mask(widths[n])
			}
		}
		try(assign)
	}
	return found
}

// MutateFields writes field values into a copy of the input according
// to the dissection's offsets and endianness.
func MutateFields(input []byte, dis *hachoir.Dissection, assign map[string]uint64) []byte {
	out := append([]byte(nil), input...)
	for name, val := range assign {
		f, ok := dis.FieldByPath(name)
		if !ok {
			continue
		}
		for i := 0; i < f.Size; i++ {
			var b byte
			if f.BigEndian {
				b = byte(val >> (8 * uint(f.Size-1-i)))
			} else {
				b = byte(val >> (8 * uint(i)))
			}
			if f.Off+i < len(out) {
				out[f.Off+i] = b
			}
		}
	}
	return out
}
