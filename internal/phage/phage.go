package phage

import (
	"fmt"
	"sort"
	"time"

	"codephage/internal/bitvec"
	"codephage/internal/compile"
	"codephage/internal/diode"
	"codephage/internal/hachoir"
	"codephage/internal/ir"
	"codephage/internal/smt"
	"codephage/internal/vm"
)

// Options tunes a transfer.
type Options struct {
	// ExitMode selects the firing behaviour of generated patches.
	ExitMode ExitMode
	// MaxChecks bounds the candidate checks tried per round (0 = all).
	MaxChecks int
	// MaxRounds bounds the recursive residual-error elimination.
	MaxRounds int
	// MaxSteps bounds each VM run.
	MaxSteps int64
	// NoSimplify disables the Figure 5 rewrite rules (ablation).
	NoSimplify bool
	// Solver overrides the SMT solver (ablation hooks); nil = fresh.
	Solver *smt.Solver
	// DisableDiodeRescan skips the residual-error scan.
	DisableDiodeRescan bool
	// DiodeRandSeed seeds the residual scans.
	DiodeRandSeed int64
}

func (o *Options) maxRounds() int {
	if o.MaxRounds > 0 {
		return o.MaxRounds
	}
	return 6
}

// Transfer describes one donor→recipient code transfer task.
type Transfer struct {
	RecipientName string
	RecipientSrc  string
	Donor         *ir.Module // stripped donor binary
	DonorName     string
	Format        string // dissector name
	Seed          []byte
	Error         []byte   // initial error-triggering input
	Regression    [][]byte // inputs the recipient is known to process
	VulnFn        string   // DIODE rescan target function ("" = none)
	Opts          Options
}

// PatchRound reports one transferred patch (one error eliminated).
type PatchRound struct {
	CheckIndex      int // index of the used check among flipped ones
	RelevantSites   int // Figure 8: Relevant Branches
	FlippedSites    int // Figure 8: Flipped Branches
	CandidatePoints int // Figure 8: X
	UnstablePoints  int // Figure 8: Y
	Untranslatable  int // Figure 8: Z
	ViablePoints    int // Figure 8: W = X - Y - Z
	ExcisedOps      int // Figure 8: Check Size X
	TranslatedOps   int // Figure 8: Check Size Y
	ExcisedCheck    string
	TranslatedCheck string
	PatchText       string
	InsertFn        string
	InsertLine      int32
	ErrorInput      []byte

	excised *bitvec.Expr // field-level check, kept for the SMT argument
}

// Result is the outcome of a successful transfer.
type Result struct {
	Rounds      []PatchRound
	FinalSource string
	FinalModule *ir.Module
	GenTime     time.Duration
	// OverflowFreeProven holds the SMT verdict on whether the
	// transferred checks rule out the observed overflows entirely
	// (nil: solver budget exhausted, verdict unknown).
	OverflowFreeProven *bool
	SolverStats        smt.Stats
}

// UsedChecks returns the number of transferred checks (Figure 8).
func (r *Result) UsedChecks() int { return len(r.Rounds) }

// Run executes the full Code Phage pipeline for the transfer task.
func (t *Transfer) Run() (*Result, error) {
	start := time.Now()
	solver := t.Opts.Solver
	if solver == nil {
		solver = smt.New()
	}
	dissector, ok := hachoir.ByName(t.Format)
	if !ok {
		return nil, fmt.Errorf("phage: unknown input format %q", t.Format)
	}
	dis, err := dissector.Dissect(t.Seed)
	if err != nil {
		return nil, err
	}

	// Donor selection: the donor must process both inputs (§3.1).
	if r := vm.New(t.Donor, t.Seed).Run(); !r.OK() {
		return nil, fmt.Errorf("phage: donor %s rejected: crashes on seed: %v", t.DonorName, r.Trap)
	}
	if r := vm.New(t.Donor, t.Error).Run(); !r.OK() {
		return nil, fmt.Errorf("phage: donor %s rejected: crashes on error input: %v", t.DonorName, r.Trap)
	}

	// Baseline regression behaviour of the original recipient.
	origMod, err := compile.CompileSource(t.RecipientName, t.RecipientSrc)
	if err != nil {
		return nil, fmt.Errorf("phage: recipient does not compile: %w", err)
	}
	baseline := make([]behaviour, len(t.Regression))
	for i, input := range t.Regression {
		baseline[i] = observe(origMod, input, t.Opts.MaxSteps)
	}

	res := &Result{FinalSource: t.RecipientSrc, FinalModule: origMod}
	src := t.RecipientSrc
	errIn := t.Error
	var guards []*bitvec.Expr    // transferred checks (field-level)
	var sizeExprs []*bitvec.Expr // overflowing size expressions seen

	for round := 0; round < t.Opts.maxRounds(); round++ {
		pr, patchedSrc, patchedMod, err := t.oneRound(src, errIn, dis, solver, baseline)
		if err != nil {
			return nil, fmt.Errorf("phage: round %d: %w", round+1, err)
		}
		res.Rounds = append(res.Rounds, *pr)
		src, res.FinalSource = patchedSrc, patchedSrc
		res.FinalModule = patchedMod

		// Collect material for the overflow-freedom argument.
		if g := checkGuard(pr); g != nil {
			guards = append(guards, g)
		}

		// Residual error scan (§3.4): rerun DIODE on the patched build.
		if t.VulnFn == "" || t.Opts.DisableDiodeRescan {
			break
		}
		finding, derr := diode.Discover(patchedMod, t.Seed, dis, diode.Options{
			VulnFn: t.VulnFn, MaxSteps: t.Opts.MaxSteps,
			RandSeed: t.Opts.DiodeRandSeed + int64(round),
		})
		if derr != nil {
			return nil, fmt.Errorf("phage: residual scan: %w", derr)
		}
		if finding == nil {
			break // no residual errors: done
		}
		sizeExprs = append(sizeExprs, finding.SizeExpr)
		errIn = finding.Input
	}

	res.GenTime = time.Since(start)
	// The overflow-freedom argument gets its own small conflict budget:
	// satisfiable cases fall out of concrete probing almost instantly,
	// while full UNSAT proofs over 64-bit multipliers are routinely out
	// of reach — the verdict is then "unproven" (nil), and the DIODE
	// residual scan remains the operative evidence.
	proofSolver := smt.New()
	proofSolver.MaxConflicts = 20000
	res.OverflowFreeProven = proveOverflowFree(proofSolver, guards, sizeExprs)
	res.SolverStats = solver.Stats
	return res, nil
}

// checkGuard re-parses the excised check recorded in the round (the
// field-level predicate) for the overflow-freedom conjunction. The
// expression itself is retained on the round via the excised cond.
func checkGuard(pr *PatchRound) *bitvec.Expr { return pr.excised }

// oneRound transfers one patch for the current error input.
func (t *Transfer) oneRound(src string, errIn []byte, dis *hachoir.Dissection, solver *smt.Solver, baseline []behaviour) (*PatchRound, string, *ir.Module, error) {
	relevant := dis.DiffFields(t.Seed, errIn)
	disc, err := DiscoverChecks(t.Donor, t.Seed, errIn, dis, relevant, t.Opts.NoSimplify)
	if err != nil {
		return nil, "", nil, err
	}
	if len(disc.Checks) == 0 {
		return nil, "", nil, fmt.Errorf("donor %s has no flipped branches for this error", t.DonorName)
	}
	mod, err := compile.CompileSource(t.RecipientName, src)
	if err != nil {
		return nil, "", nil, fmt.Errorf("recipient does not compile: %w", err)
	}

	maxChecks := t.Opts.MaxChecks
	if maxChecks <= 0 || maxChecks > len(disc.Checks) {
		maxChecks = len(disc.Checks)
	}
	var lastErr error
	for ci := 0; ci < maxChecks; ci++ {
		check := disc.Checks[ci]
		pr, patchedSrc, patchedMod, err := t.tryCheck(mod, src, errIn, dis, relevant, solver, baseline, &check)
		if err != nil {
			lastErr = err
			continue // try the next candidate check (§1.1 Retry)
		}
		pr.CheckIndex = ci
		pr.RelevantSites = disc.RelevantSites
		pr.FlippedSites = disc.FlippedSites
		pr.ErrorInput = errIn
		return pr, patchedSrc, patchedMod, nil
	}
	return nil, "", nil, fmt.Errorf("no candidate check validates (last: %v)", lastErr)
}

// patchCandidate is one translated patch at one insertion point.
type patchCandidate struct {
	point      *Point
	translated *bitvec.Expr
	text       string
}

// tryCheck attempts to insert and validate one candidate check.
func (t *Transfer) tryCheck(mod *ir.Module, src string, errIn []byte, dis *hachoir.Dissection, relevant map[int]bool, solver *smt.Solver, baseline []behaviour, check *Check) (*PatchRound, string, *ir.Module, error) {
	fields := check.Cond.Fields()
	if len(fields) == 0 {
		return nil, "", nil, fmt.Errorf("check at %v has no input fields", check.Site)
	}
	analysis, err := AnalyzeInsertionPoints(mod, t.Seed, dis, fields, relevant)
	if err != nil {
		return nil, "", nil, err
	}
	total, unstable, stable := analysis.Candidates()

	// Translate the check at every stable point (§3.3).
	var candidates []patchCandidate
	untranslatable := 0
	for _, p := range stable {
		translated := Rewrite(check.Cond, p.Names, solver)
		if translated == nil {
			untranslatable++
			continue
		}
		text, rerr := PatchText(translated, t.Opts.ExitMode)
		if rerr != nil {
			untranslatable++
			continue
		}
		candidates = append(candidates, patchCandidate{point: p, translated: translated, text: text})
	}
	pr := &PatchRound{
		CandidatePoints: total,
		UnstablePoints:  unstable,
		Untranslatable:  untranslatable,
		ViablePoints:    len(candidates),
		ExcisedOps:      check.Raw.OpCount(),
		ExcisedCheck:    check.Cond.String(),
		excised:         check.Cond,
	}
	if len(candidates) == 0 {
		return nil, "", nil, fmt.Errorf("check translates at no stable insertion point")
	}

	// Sort generated patches by size and validate in that order (§2).
	sort.Slice(candidates, func(i, j int) bool {
		oi, oj := candidates[i].translated.OpCount(), candidates[j].translated.OpCount()
		if oi != oj {
			return oi < oj
		}
		if len(candidates[i].text) != len(candidates[j].text) {
			return len(candidates[i].text) < len(candidates[j].text)
		}
		if candidates[i].point.Fn != candidates[j].point.Fn {
			return candidates[i].point.Fn < candidates[j].point.Fn
		}
		return candidates[i].point.Line < candidates[j].point.Line
	})

	var lastReason string
	for _, cand := range candidates {
		patchedSrc, perr := InsertBeforeLine(src, cand.point.Line, cand.text)
		if perr != nil {
			lastReason = perr.Error()
			continue
		}
		val := ValidatePatch(t.RecipientName, patchedSrc, errIn, t.Regression, baseline, t.Opts.MaxSteps)
		if !val.OK() {
			lastReason = val.FailReason
			continue
		}
		pr.TranslatedOps = cand.translated.OpCount()
		pr.TranslatedCheck = cand.translated.String()
		pr.PatchText = cand.text
		pr.InsertFn = cand.point.FnName
		pr.InsertLine = cand.point.Line
		return pr, patchedSrc, val.Module, nil
	}
	return nil, "", nil, fmt.Errorf("no insertion point validates (last: %s)", lastReason)
}

// proveOverflowFree asks the solver whether any input can satisfy all
// transferred checks and still wrap one of the observed allocation
// sizes (§1.1: additional validation for integer overflow errors).
// Returns nil when the verdict is unknown (budget exhausted) or there
// is nothing to prove.
func proveOverflowFree(solver *smt.Solver, guards, sizeExprs []*bitvec.Expr) *bool {
	if len(guards) == 0 || len(sizeExprs) == 0 {
		return nil
	}
	verdict := true
	for _, size := range sizeExprs {
		cond := diode.OverflowCond(size, 1<<20)
		for _, g := range guards {
			cond = bitvec.And(g, cond)
		}
		sat, _, err := solver.Sat(cond)
		if err != nil {
			return nil // unknown
		}
		if sat {
			verdict = false
		}
	}
	return &verdict
}
