// Package phage is the compatibility façade over the staged transfer
// engine in internal/pipeline. The complete horizontal code transfer
// pipeline of the paper — donor selection, candidate check discovery,
// check excision, insertion point identification, the data structure
// traversal and Rewrite algorithms (Figures 6 and 7), source-level
// patch generation, and patch validation — now lives in the engine;
// this package re-exports the historical API so existing callers keep
// working. Transfer.Run delegates to the engine's default instance.
//
// New code should import codephage/internal/pipeline directly: it
// additionally exposes the Engine (worker pools, shared caches) and
// the Batch API for running many transfers concurrently.
package phage

import (
	"codephage/internal/pipeline"
)

// Core task and result types.
type (
	// Transfer describes one donor→recipient code transfer task.
	// Transfer.Run delegates to pipeline.DefaultEngine.
	Transfer = pipeline.Transfer
	// Options tunes a transfer.
	Options = pipeline.Options
	// Result is the outcome of a successful transfer.
	Result = pipeline.Result
	// PatchRound reports one transferred patch.
	PatchRound = pipeline.PatchRound
)

// Stage primitive types.
type (
	// Check is one candidate check excised from the donor.
	Check = pipeline.Check
	// Discovery summarises the donor analysis.
	Discovery = pipeline.Discovery
	// Name is one data-structure traversal result (Figure 6).
	Name = pipeline.Name
	// Point is one candidate insertion point.
	Point = pipeline.Point
	// InsertionAnalysis is the result of the recipient-side run.
	InsertionAnalysis = pipeline.InsertionAnalysis
	// Validation is the outcome of the patch validation phase.
	Validation = pipeline.Validation
	// ExitMode selects what a firing patch does.
	ExitMode = pipeline.ExitMode
	// ErrUnrenderable reports a construct with no MiniC equivalent.
	ErrUnrenderable = pipeline.ErrUnrenderable
	// DonorCandidate pairs a donor binary with a display name.
	DonorCandidate = pipeline.DonorCandidate
)

// Patch reaction modes.
const (
	ExitOnFail = pipeline.ExitOnFail
	ReturnZero = pipeline.ReturnZero
)

// The façade carries no logic of its own: every re-export below is a
// direct assignment of the pipeline implementation, so the behaviour
// exists exactly once (a façade wrapper body, even a one-liner, is a
// place for drift to hide).
var (
	// DiscoverChecks runs the donor on the seed and error-triggering
	// inputs and excises a candidate check from every flipped branch.
	DiscoverChecks = pipeline.DiscoverChecks

	// SelectDonors filters a donor database down to the applications
	// that process both the seed and the error-triggering input
	// successfully.
	SelectDonors = pipeline.SelectDonors

	// AnalyzeInsertionPoints finds the candidate insertion points for a
	// check over the given input fields.
	AnalyzeInsertionPoints = pipeline.AnalyzeInsertionPoints

	// Rewrite implements Figure 7: translate the expression into the
	// name space of the recipient, querying the shared constraint
	// service through the given session.
	Rewrite = pipeline.Rewrite

	// CheckHolds evaluates the translated check against concrete values.
	CheckHolds = pipeline.CheckHolds

	// RenderExpr renders a translated expression as MiniC text.
	RenderExpr = pipeline.RenderExpr

	// PatchText renders the complete guard statement for a check.
	PatchText = pipeline.PatchText

	// InsertPatchLine inserts the patch immediately after the given line.
	InsertPatchLine = pipeline.InsertPatchLine

	// InsertBeforeLine inserts the patch immediately before the given line.
	InsertBeforeLine = pipeline.InsertBeforeLine

	// ValidatePatch recompiles the patched recipient and subjects it to
	// the paper's validation steps.
	ValidatePatch = pipeline.ValidatePatch

	// BinaryPatch splices the compiled check into a clone of the module.
	BinaryPatch = pipeline.BinaryPatch

	// TryDonors attempts the transfer with each donor in turn.
	TryDonors = pipeline.TryDonors

	// Diff returns a unified-style rendering of the inserted patch lines.
	Diff = pipeline.Diff
)
