// Package phage is the compatibility façade over the staged transfer
// engine in internal/pipeline. The complete horizontal code transfer
// pipeline of the paper — donor selection, candidate check discovery,
// check excision, insertion point identification, the data structure
// traversal and Rewrite algorithms (Figures 6 and 7), source-level
// patch generation, and patch validation — now lives in the engine;
// this package re-exports the historical API so existing callers keep
// working. Transfer.Run delegates to the engine's default instance.
//
// New code should import codephage/internal/pipeline directly: it
// additionally exposes the Engine (worker pools, shared caches) and
// the Batch API for running many transfers concurrently.
package phage

import (
	"codephage/internal/bitvec"
	"codephage/internal/hachoir"
	"codephage/internal/ir"
	"codephage/internal/pipeline"
	"codephage/internal/smt"
)

// Core task and result types.
type (
	// Transfer describes one donor→recipient code transfer task.
	// Transfer.Run delegates to pipeline.DefaultEngine.
	Transfer = pipeline.Transfer
	// Options tunes a transfer.
	Options = pipeline.Options
	// Result is the outcome of a successful transfer.
	Result = pipeline.Result
	// PatchRound reports one transferred patch.
	PatchRound = pipeline.PatchRound
)

// Stage primitive types.
type (
	// Check is one candidate check excised from the donor.
	Check = pipeline.Check
	// Discovery summarises the donor analysis.
	Discovery = pipeline.Discovery
	// Name is one data-structure traversal result (Figure 6).
	Name = pipeline.Name
	// Point is one candidate insertion point.
	Point = pipeline.Point
	// InsertionAnalysis is the result of the recipient-side run.
	InsertionAnalysis = pipeline.InsertionAnalysis
	// Validation is the outcome of the patch validation phase.
	Validation = pipeline.Validation
	// ExitMode selects what a firing patch does.
	ExitMode = pipeline.ExitMode
	// ErrUnrenderable reports a construct with no MiniC equivalent.
	ErrUnrenderable = pipeline.ErrUnrenderable
	// DonorCandidate pairs a donor binary with a display name.
	DonorCandidate = pipeline.DonorCandidate
)

// Patch reaction modes.
const (
	ExitOnFail = pipeline.ExitOnFail
	ReturnZero = pipeline.ReturnZero
)

// DiscoverChecks runs the donor on the seed and error-triggering
// inputs and excises a candidate check from every flipped branch.
func DiscoverChecks(donor *ir.Module, seed, errIn []byte, dis *hachoir.Dissection, relevant map[int]bool, noSimplify bool) (*Discovery, error) {
	return pipeline.DiscoverChecks(donor, seed, errIn, dis, relevant, noSimplify)
}

// SelectDonors filters a donor database down to the applications that
// process both the seed and the error-triggering input successfully.
func SelectDonors(db []*ir.Module, seed, errIn []byte) []*ir.Module {
	return pipeline.SelectDonors(db, seed, errIn)
}

// AnalyzeInsertionPoints finds the candidate insertion points for a
// check over the given input fields.
func AnalyzeInsertionPoints(recipient *ir.Module, seed []byte, dis *hachoir.Dissection, checkFields []string, relevant map[int]bool) (*InsertionAnalysis, error) {
	return pipeline.AnalyzeInsertionPoints(recipient, seed, dis, checkFields, relevant)
}

// Rewrite implements Figure 7: translate the expression into the name
// space of the recipient.
func Rewrite(e *bitvec.Expr, names []Name, solver *smt.Solver) *bitvec.Expr {
	return pipeline.Rewrite(e, names, solver)
}

// CheckHolds evaluates the translated check against concrete values.
func CheckHolds(translated *bitvec.Expr, fieldEnv map[string]uint64, names []Name) (bool, error) {
	return pipeline.CheckHolds(translated, fieldEnv, names)
}

// RenderExpr renders a translated expression as MiniC text.
func RenderExpr(e *bitvec.Expr) (string, error) { return pipeline.RenderExpr(e) }

// PatchText renders the complete guard statement for a check.
func PatchText(translated *bitvec.Expr, mode ExitMode) (string, error) {
	return pipeline.PatchText(translated, mode)
}

// InsertPatchLine inserts the patch immediately after the given line.
func InsertPatchLine(src string, afterLine int32, patch string) (string, error) {
	return pipeline.InsertPatchLine(src, afterLine, patch)
}

// InsertBeforeLine inserts the patch immediately before the given line.
func InsertBeforeLine(src string, line int32, patch string) (string, error) {
	return pipeline.InsertBeforeLine(src, line, patch)
}

// ValidatePatch recompiles the patched recipient and subjects it to
// the paper's validation steps. This re-export must stay a var: the
// baseline parameter's element type is unexported in pipeline (as it
// was here before the move), so a wrapper func cannot spell the
// signature.
var ValidatePatch = pipeline.ValidatePatch

// BinaryPatch splices the compiled check into a clone of the module.
func BinaryPatch(mod *ir.Module, fnName string, line int32, translated *bitvec.Expr, mode ExitMode) (*ir.Module, error) {
	return pipeline.BinaryPatch(mod, fnName, line, translated, mode)
}

// TryDonors attempts the transfer with each donor in turn.
func TryDonors(template *Transfer, donors []DonorCandidate) (*Result, string, error) {
	return pipeline.TryDonors(template, donors)
}

// Diff returns a unified-style rendering of the inserted patch lines.
func Diff(original, patched string) string { return pipeline.Diff(original, patched) }
