package phage

import (
	"strings"
	"testing"

	"codephage/internal/apps"
	"codephage/internal/diode"
	"codephage/internal/hachoir"
	"codephage/internal/vm"
)

// buildTransfer assembles a Transfer for a registry target and donor,
// obtaining the error input from the registry or from DIODE.
func buildTransfer(t *testing.T, tgt *apps.Target, donorName string) *Transfer {
	t.Helper()
	recipient, err := apps.ByName(tgt.Recipient)
	if err != nil {
		t.Fatal(err)
	}
	donorApp, err := apps.ByName(donorName)
	if err != nil {
		t.Fatal(err)
	}
	donorBin, err := apps.BuildDonorBinary(donorApp)
	if err != nil {
		t.Fatal(err)
	}
	errIn := tgt.Error
	if errIn == nil {
		mod, err := apps.Build(recipient)
		if err != nil {
			t.Fatal(err)
		}
		d, _ := hachoir.ByName(tgt.Format)
		dis, derr := d.Dissect(tgt.Seed)
		if derr != nil {
			t.Fatal(derr)
		}
		finding, ferr := diode.Discover(mod, tgt.Seed, dis, diode.Options{VulnFn: tgt.VulnFn})
		if ferr != nil {
			t.Fatal(ferr)
		}
		if finding == nil {
			t.Fatalf("DIODE found no error at %s/%s", tgt.Recipient, tgt.ID)
		}
		errIn = finding.Input
	}
	vulnFn := ""
	if tgt.Kind == apps.Overflow {
		vulnFn = tgt.VulnFn
	}
	return &Transfer{
		RecipientName: tgt.Recipient,
		RecipientSrc:  recipient.Source,
		Donor:         donorBin,
		DonorName:     donorName,
		Format:        tgt.Format,
		Seed:          tgt.Seed,
		Error:         errIn,
		Regression:    apps.RegressionSuite(tgt.Format),
		VulnFn:        vulnFn,
	}
}

func TestSection2WalkthroughCWebPFromFEH(t *testing.T) {
	tgt, err := apps.TargetByID("cwebp", "jpegdec.c@248")
	if err != nil {
		t.Fatal(err)
	}
	tr := buildTransfer(t, tgt, "feh")
	res, err := tr.Run()
	if err != nil {
		t.Fatalf("transfer failed: %v", err)
	}
	if len(res.Rounds) == 0 {
		t.Fatal("no patches generated")
	}
	r0 := res.Rounds[0]
	t.Logf("relevant=%d flipped=%d points=%d-%d-%d=%d size=%d->%d",
		r0.RelevantSites, r0.FlippedSites, r0.CandidatePoints, r0.UnstablePoints,
		r0.Untranslatable, r0.ViablePoints, r0.ExcisedOps, r0.TranslatedOps)
	t.Logf("patch: %s (after %s line %d)", r0.PatchText, r0.InsertFn, r0.InsertLine)

	// The paper's walk-through properties:
	// the used check is a flipped branch,
	if r0.FlippedSites == 0 || r0.RelevantSites < r0.FlippedSites {
		t.Errorf("branch counts inconsistent: relevant=%d flipped=%d", r0.RelevantSites, r0.FlippedSites)
	}
	// the translated check is far smaller than the excised check,
	if r0.TranslatedOps >= r0.ExcisedOps {
		t.Errorf("no size reduction: %d -> %d", r0.ExcisedOps, r0.TranslatedOps)
	}
	// the patch references recipient values holding the dimensions
	// (either the dinfo fields or the locals copied from them),
	if !strings.Contains(r0.PatchText, "width") || !strings.Contains(r0.PatchText, "height") {
		t.Errorf("patch does not reference recipient width/height values: %s", r0.PatchText)
	}
	// the FEH check bounds the width*height product by 2^29-1.
	if !strings.Contains(r0.PatchText, "536870911") {
		t.Errorf("patch lost the IMAGE_DIMENSIONS_OK bound: %s", r0.PatchText)
	}
	// The patched recipient rejects the error input cleanly.
	r := vm.New(res.FinalModule, tr.Error).Run()
	if !r.OK() {
		t.Fatalf("patched recipient still traps: %v", r.Trap)
	}
	// And still processes the seed.
	r = vm.New(res.FinalModule, tr.Seed).Run()
	if !r.OK() || r.ExitCode != 0 {
		t.Fatalf("patched recipient broke the seed: exit %d trap %v", r.ExitCode, r.Trap)
	}
}

func TestWiresharkVersionTransfer(t *testing.T) {
	tgt, err := apps.TargetByID("wireshark14", "packet-dcp-etsi.c@258")
	if err != nil {
		t.Fatal(err)
	}
	tr := buildTransfer(t, tgt, "wireshark18")
	res, err := tr.Run()
	if err != nil {
		t.Fatalf("transfer failed: %v", err)
	}
	r0 := res.Rounds[0]
	t.Logf("patch: %s (after %s line %d)", r0.PatchText, r0.InsertFn, r0.InsertLine)
	// The donor's `if (real_len)` check guards plen != 0; the renamed
	// field must have been bridged to the recipient's plen.
	if !strings.Contains(r0.PatchText, "plen") {
		t.Errorf("patch does not reference the recipient's plen: %s", r0.PatchText)
	}
	r := vm.New(res.FinalModule, tr.Error).Run()
	if !r.OK() {
		t.Fatalf("patched wireshark still divides by zero: %v", r.Trap)
	}
}

func TestJasPerDataStructureTranslation(t *testing.T) {
	// OpenJPEG checks tileno >= tw*th; JasPer stores the product as
	// dec->numtiles. The transfer must recognise the equivalence.
	tgt, err := apps.TargetByID("jasper", "jpc_dec.c@492")
	if err != nil {
		t.Fatal(err)
	}
	tr := buildTransfer(t, tgt, "openjpeg")
	res, err := tr.Run()
	if err != nil {
		t.Fatalf("transfer failed: %v", err)
	}
	r0 := res.Rounds[0]
	t.Logf("excised: %s", r0.ExcisedCheck)
	t.Logf("patch: %s (after %s line %d)", r0.PatchText, r0.InsertFn, r0.InsertLine)
	r := vm.New(res.FinalModule, tr.Error).Run()
	if !r.OK() {
		t.Fatalf("patched jasper still overflows: %v", r.Trap)
	}
}

func TestGif2tiffTransfer(t *testing.T) {
	tgt, err := apps.TargetByID("gif2tiff", "gif2tiff.c@355")
	if err != nil {
		t.Fatal(err)
	}
	tr := buildTransfer(t, tgt, "magick9")
	res, err := tr.Run()
	if err != nil {
		t.Fatalf("transfer failed: %v", err)
	}
	r0 := res.Rounds[0]
	t.Logf("patch: %s (after %s line %d)", r0.PatchText, r0.InsertFn, r0.InsertLine)
	// The magick9 check bounds the LZW code size by 12.
	if !strings.Contains(r0.PatchText, "12") {
		t.Errorf("patch lost the MaximumLZWBits bound: %s", r0.PatchText)
	}
	r := vm.New(res.FinalModule, tr.Error).Run()
	if !r.OK() {
		t.Fatalf("patched gif2tiff still overflows: %v", r.Trap)
	}
}

func TestInsertPatchLine(t *testing.T) {
	src := "a\n\tb\nc"
	out, err := InsertPatchLine(src, 2, "PATCH")
	if err != nil {
		t.Fatal(err)
	}
	want := "a\n\tb\n\tPATCH\nc"
	if out != want {
		t.Fatalf("out = %q, want %q", out, want)
	}
	if _, err := InsertPatchLine(src, 0, "x"); err == nil {
		t.Error("line 0 accepted")
	}
	if _, err := InsertPatchLine(src, 99, "x"); err == nil {
		t.Error("line 99 accepted")
	}
}

func TestReportAndDiff(t *testing.T) {
	tgt, err := apps.TargetByID("gif2tiff", "gif2tiff.c@355")
	if err != nil {
		t.Fatal(err)
	}
	tr := buildTransfer(t, tgt, "magick9")
	res, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report("gif2tiff", "magick9")
	for _, want := range []string{
		"Code Phage transfer", "patch 1:", "insertion points",
		"check size", "translated check", "solver:",
	} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	d := Diff(tr.RecipientSrc, res.FinalSource)
	if !strings.Contains(d, "+") || !strings.Contains(d, "exit(-1);") {
		t.Errorf("diff does not show the inserted patch:\n%s", d)
	}
	// Exactly one inserted line per round.
	if got := strings.Count(d, "\n"); got != len(res.Rounds) {
		t.Errorf("diff lines = %d, want %d", got, len(res.Rounds))
	}
}

func TestTryDonors(t *testing.T) {
	tgt, err := apps.TargetByID("cwebp", "jpegdec.c@248")
	if err != nil {
		t.Fatal(err)
	}
	template := buildTransfer(t, tgt, "feh")

	// A donor that cannot help (reads the wrong format entirely).
	badApp, _ := apps.ByName("wireshark18")
	bad, err := apps.BuildDonorBinary(badApp)
	if err != nil {
		t.Fatal(err)
	}
	goodApp, _ := apps.ByName("mtpaint")
	good, err := apps.BuildDonorBinary(goodApp)
	if err != nil {
		t.Fatal(err)
	}
	res, name, err := TryDonors(template, []DonorCandidate{
		{Name: "wireshark18", Module: bad},
		{Name: "mtpaint", Module: good},
	})
	if err != nil {
		t.Fatalf("TryDonors: %v", err)
	}
	if name != "mtpaint" {
		t.Errorf("selected donor %q, want mtpaint", name)
	}
	if res.UsedChecks() < 1 {
		t.Error("no checks transferred")
	}

	// All-bad donor lists must fail with an aggregated error.
	_, _, err = TryDonors(template, []DonorCandidate{{Name: "wireshark18", Module: bad}})
	if err == nil {
		t.Fatal("expected failure with no viable donor")
	}
}
