package ir

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"strings"
)

// imageMagic guards serialized module images.
const imageMagic = "MVX1"

// Save serializes the module as a binary image.
func (m *Module) Save(w io.Writer) error {
	if _, err := io.WriteString(w, imageMagic); err != nil {
		return err
	}
	return gob.NewEncoder(w).Encode(m)
}

// LoadModule deserializes a module image written by Save and
// validates it.
func LoadModule(r io.Reader) (*Module, error) {
	magic := make([]byte, len(imageMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("ir: reading image magic: %w", err)
	}
	if string(magic) != imageMagic {
		return nil, fmt.Errorf("ir: bad image magic %q", magic)
	}
	var m Module
	if err := gob.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("ir: decoding image: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// Bytes serializes the module to a byte slice.
func (m *Module) Bytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// FromBytes deserializes a module image from a byte slice.
func FromBytes(b []byte) (*Module, error) {
	return LoadModule(bytes.NewReader(b))
}

// Disasm renders a human-readable listing of the function.
func (f *Function) Disasm() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s (regs=%d frame=%d ret=w%d)\n",
		f.Name, f.NumRegs, f.FrameSize, f.RetW)
	for pc := range f.Code {
		fmt.Fprintf(&sb, "  %4d: %s\n", pc, f.Code[pc].String())
	}
	return sb.String()
}

// String renders one instruction.
func (in *Instr) String() string {
	switch in.Op {
	case Nop:
		return "nop"
	case ConstOp:
		return fmt.Sprintf("r%d = const.w%d %d", in.Dst, in.W, in.Imm)
	case Mov:
		return fmt.Sprintf("r%d = mov r%d", in.Dst, in.A)
	case ZExt, SExt, Trunc:
		return fmt.Sprintf("r%d = %s.w%d<-w%d r%d", in.Dst, in.Op, in.W, in.SrcW, in.A)
	case Load:
		return fmt.Sprintf("r%d = load.w%d [r%d]", in.Dst, in.W, in.A)
	case Store:
		return fmt.Sprintf("store.w%d [r%d] = r%d", in.W, in.A, in.B)
	case FrameAddr:
		return fmt.Sprintf("r%d = frameaddr %d", in.Dst, int64(in.Imm))
	case GlobalAddr:
		return fmt.Sprintf("r%d = globaladdr %d", in.Dst, int64(in.Imm))
	case Call:
		return fmt.Sprintf("r%d = call f%d %v", in.Dst, in.Fn, in.Args)
	case CallB:
		return fmt.Sprintf("r%d = callb %s %v", in.Dst, in.Builtin, in.Args)
	case Jmp:
		return fmt.Sprintf("jmp %d", in.Target)
	case Br:
		return fmt.Sprintf("br r%d ? %d : %d", in.A, in.Target, in.Target2)
	case Ret:
		return fmt.Sprintf("ret r%d", in.A)
	}
	if in.Op.IsBinary() {
		return fmt.Sprintf("r%d = %s.w%d r%d, r%d", in.Dst, in.Op, in.W, in.A, in.B)
	}
	return fmt.Sprintf("%s ?", in.Op)
}
