package ir

import (
	"bytes"
	"strings"
	"testing"
)

func sampleModule() *Module {
	f := &Function{
		Name: "main", NumRegs: 3, FrameSize: 8, RetW: W32,
		Code: []Instr{
			{Op: ConstOp, W: W32, Dst: 0, Imm: 1, Line: 2},
			{Op: ConstOp, W: W32, Dst: 1, Imm: 2, Line: 3},
			{Op: Add, W: W32, Dst: 2, A: 0, B: 1, Line: 3},
			{Op: Ret, A: 2, Line: 4},
		},
		Vars: []VarInfo{{Name: "x", Type: 0, Off: 0, Line: 2}},
	}
	return &Module{
		Name:         "sample",
		Funcs:        []*Function{f},
		Entry:        0,
		Globals:      []byte{1, 2, 3, 4},
		GlobalVars:   []VarInfo{{Name: "g", Type: 0, Off: 0}},
		GlobalBlocks: []GlobalBlock{{Off: 0, Size: 4}},
		Types:        []TypeInfo{{Kind: KInt, Size: 4, W: W32, Name: "u32"}},
	}
}

func TestWidthHelpers(t *testing.T) {
	if W8.Mask() != 0xFF || W64.Mask() != ^uint64(0) {
		t.Error("mask values wrong")
	}
	if W32.Bytes() != 4 {
		t.Errorf("W32.Bytes() = %d", W32.Bytes())
	}
}

func TestValidateAcceptsSample(t *testing.T) {
	if err := sampleModule().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Module)
		want   string
	}{
		{"bad entry", func(m *Module) { m.Entry = 7 }, "entry"},
		{"empty function", func(m *Module) { m.Funcs[0].Code = nil }, "no code"},
		{"bad register", func(m *Module) { m.Funcs[0].Code[2].A = 99 }, "register"},
		{"bad jump", func(m *Module) {
			m.Funcs[0].Code[0] = Instr{Op: Jmp, Target: 99}
		}, "jump target"},
		{"bad branch", func(m *Module) {
			m.Funcs[0].Code[0] = Instr{Op: Br, A: 0, Target: 0, Target2: 99}
		}, "branch targets"},
		{"bad call", func(m *Module) {
			m.Funcs[0].Code[0] = Instr{Op: Call, Fn: 9}
		}, "call target"},
		{"arg count", func(m *Module) {
			m.Funcs[0].Params = []Param{{Off: 0, W: W32}}
			m.Funcs[0].Code[0] = Instr{Op: Call, Fn: 0, Args: nil}
		}, "args"},
		{"no terminator", func(m *Module) {
			m.Funcs[0].Code = m.Funcs[0].Code[:3]
		}, "terminator"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := sampleModule()
			c.mutate(m)
			err := m.Validate()
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("Validate = %v, want error containing %q", err, c.want)
			}
		})
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m := sampleModule()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadModule(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "sample" || len(back.Funcs) != 1 || back.Funcs[0].Name != "main" {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if len(back.Globals) != 4 || back.Globals[2] != 3 {
		t.Error("globals lost")
	}
	if len(back.Types) != 1 || back.Types[0].W != W32 {
		t.Error("types lost")
	}
}

func TestLoadRejectsBadMagic(t *testing.T) {
	if _, err := LoadModule(bytes.NewReader([]byte("NOPE????"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := LoadModule(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty image accepted")
	}
}

func TestLoadValidates(t *testing.T) {
	m := sampleModule()
	m.Funcs[0].Code[2].A = 99 // corrupt
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModule(&buf); err == nil {
		t.Fatal("corrupt image accepted")
	}
}

func TestStrip(t *testing.T) {
	m := sampleModule()
	m.Strip()
	if !m.Stripped || m.Types != nil || m.GlobalVars != nil {
		t.Error("debug info survived Strip")
	}
	if m.Funcs[0].Name != "f0" {
		t.Errorf("function name = %q, want f0", m.Funcs[0].Name)
	}
	if m.Funcs[0].Vars != nil {
		t.Error("variable info survived Strip")
	}
	for _, in := range m.Funcs[0].Code {
		if in.Line != 0 {
			t.Error("line numbers survived Strip")
		}
	}
	if len(m.GlobalBlocks) != 1 {
		t.Error("GlobalBlocks must survive Strip (runtime metadata)")
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestClone(t *testing.T) {
	m := sampleModule()
	c := m.Clone()
	c.Funcs[0].Code[0].Imm = 99
	c.Globals[0] = 99
	c.Funcs[0].Name = "evil"
	if m.Funcs[0].Code[0].Imm == 99 || m.Globals[0] == 99 || m.Funcs[0].Name == "evil" {
		t.Fatal("Clone shares state with the original")
	}
}

func TestFuncByName(t *testing.T) {
	m := sampleModule()
	f, idx := m.FuncByName("main")
	if f == nil || idx != 0 {
		t.Fatalf("FuncByName(main) = %v, %d", f, idx)
	}
	f, idx = m.FuncByName("nope")
	if f != nil || idx != -1 {
		t.Fatal("FuncByName(nope) found something")
	}
}

func TestDisasm(t *testing.T) {
	m := sampleModule()
	text := m.Funcs[0].Disasm()
	for _, want := range []string{"func main", "const", "add", "ret"} {
		if !strings.Contains(text, want) {
			t.Errorf("disasm missing %q:\n%s", want, text)
		}
	}
}

func TestInstrStrings(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: Nop}, "nop"},
		{Instr{Op: ConstOp, W: W32, Dst: 1, Imm: 7}, "r1 = const.w32 7"},
		{Instr{Op: Mov, Dst: 1, A: 2}, "r1 = mov r2"},
		{Instr{Op: ZExt, W: W64, SrcW: W32, Dst: 1, A: 2}, "r1 = zext.w64<-w32 r2"},
		{Instr{Op: Load, W: W8, Dst: 1, A: 2}, "r1 = load.w8 [r2]"},
		{Instr{Op: Store, W: W16, A: 1, B: 2}, "store.w16 [r1] = r2"},
		{Instr{Op: Br, A: 3, Target: 5, Target2: 9}, "br r3 ? 5 : 9"},
		{Instr{Op: Jmp, Target: 4}, "jmp 4"},
		{Instr{Op: CallB, Dst: 0, Builtin: BAlloc}, "r0 = callb alloc []"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestOpAndBuiltinNames(t *testing.T) {
	if Add.String() != "add" || UDiv.String() != "udiv" {
		t.Error("op names wrong")
	}
	if !Add.IsBinary() || ConstOp.IsBinary() {
		t.Error("IsBinary wrong")
	}
	if !Eq.IsCmp() || Add.IsCmp() {
		t.Error("IsCmp wrong")
	}
	if BInU16BE.String() != "in_u16be" {
		t.Error("builtin name wrong")
	}
	if Op(200).String() == "" || Builtin(200).String() == "" {
		t.Error("unknown names must not be empty")
	}
}
