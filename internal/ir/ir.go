// Package ir defines MVX, the register-based bytecode that MiniC
// programs compile to and the VM executes. MVX stands in for the
// paper's x86/VEX substrate: donor applications are distributed as
// serialized, stripped MVX images (no variable names, no types, no line
// table), while recipients keep full debug information, mirroring the
// asymmetry Code Phage exploits (binary donors, debuggable recipients).
package ir

import "fmt"

// Width is an operation width in bits.
type Width uint8

// Operation widths.
const (
	W8  Width = 8
	W16 Width = 16
	W32 Width = 32
	W64 Width = 64
)

// Mask returns the value mask for the width.
func (w Width) Mask() uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << w) - 1
}

// Bytes returns the width in bytes.
func (w Width) Bytes() int32 { return int32(w) / 8 }

// Op is an MVX opcode.
type Op uint8

// MVX opcodes.
const (
	Nop Op = iota

	// Data movement.
	ConstOp // Dst = Imm (masked to W)
	Mov     // Dst = A

	// Arithmetic and logic; operands and result masked to W.
	Add
	Sub
	Mul
	UDiv // traps on zero divisor
	SDiv // traps on zero divisor
	URem
	SRem
	And
	Or
	Xor
	Shl // shift amounts >= W yield 0
	LShr
	AShr

	// Comparisons: Dst = 0 or 1; operands compared at width W.
	Eq
	Ne
	ULt
	ULe
	SLt
	SLe

	// Width conversions from SrcW to W.
	ZExt
	SExt
	Trunc

	// Memory. Load: Dst = mem[A] (width W). Store: mem[A] = B (width W).
	Load
	Store

	// Address formation.
	FrameAddr  // Dst = fp + Imm
	GlobalAddr // Dst = globals base + Imm

	// Control flow.
	Call  // Dst = Funcs[Fn](Args...)
	CallB // Dst = builtin(Builtin, Args...)
	Jmp   // pc = Target
	Br    // pc = Target if A != 0 else Target2
	Ret   // return A (if function returns a value)
)

var opNames = [...]string{
	Nop: "nop", ConstOp: "const", Mov: "mov",
	Add: "add", Sub: "sub", Mul: "mul",
	UDiv: "udiv", SDiv: "sdiv", URem: "urem", SRem: "srem",
	And: "and", Or: "or", Xor: "xor",
	Shl: "shl", LShr: "lshr", AShr: "ashr",
	Eq: "eq", Ne: "ne", ULt: "ult", ULe: "ule", SLt: "slt", SLe: "sle",
	ZExt: "zext", SExt: "sext", Trunc: "trunc",
	Load: "load", Store: "store",
	FrameAddr: "frameaddr", GlobalAddr: "globaladdr",
	Call: "call", CallB: "callb", Jmp: "jmp", Br: "br", Ret: "ret",
}

// String returns the opcode mnemonic.
func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// IsBinary reports whether the opcode is a two-operand ALU operation.
func (op Op) IsBinary() bool { return op >= Add && op <= SLe }

// IsCmp reports whether the opcode is a comparison.
func (op Op) IsCmp() bool { return op >= Eq && op <= SLe }

// Builtin identifies a VM-provided runtime function.
type Builtin uint8

// Builtins. The in_* family reads the program input stream; the taint
// tracker assigns per-byte labels at these calls (the VM is the taint
// source, like Valgrind's file-descriptor interception).
const (
	BInvalid Builtin = iota
	BInU8            // u8  in_u8()
	BInU16BE         // u16 in_u16be()
	BInU16LE         // u16 in_u16le()
	BInU32BE         // u32 in_u32be()
	BInU32LE         // u32 in_u32le()
	BInSeek          // void in_seek(u32 off)
	BInPos           // u32 in_pos()
	BInLen           // u32 in_len()
	BInEOF           // u32 in_eof()
	BAlloc           // u8* alloc(u32 n) — allocation site, bounds-checked block
	BFree            // void free(u8* p)
	BExit            // void exit(i32 code)
	BOut             // void out(u64 v) — appends v to the program output
	BAbort           // void abort() — unconditional trap
)

var builtinNames = [...]string{
	BInU8: "in_u8", BInU16BE: "in_u16be", BInU16LE: "in_u16le",
	BInU32BE: "in_u32be", BInU32LE: "in_u32le",
	BInSeek: "in_seek", BInPos: "in_pos", BInLen: "in_len", BInEOF: "in_eof",
	BAlloc: "alloc", BFree: "free", BExit: "exit", BOut: "out", BAbort: "abort",
}

// String returns the builtin's MiniC-visible name.
func (b Builtin) String() string {
	if int(b) < len(builtinNames) && builtinNames[b] != "" {
		return builtinNames[b]
	}
	return fmt.Sprintf("builtin(%d)", uint8(b))
}

// Reg is a virtual register index within a function.
type Reg int32

// Instr is a single MVX instruction.
type Instr struct {
	Op      Op
	W       Width // operation width
	SrcW    Width // conversion source width (ZExt/SExt/Trunc)
	Dst     Reg
	A, B    Reg
	Imm     uint64
	Target  int32 // Jmp/Br taken target (instruction index)
	Target2 int32 // Br fall-through target
	Fn      int32 // Call callee index
	Builtin Builtin
	Args    []Reg
	Line    int32 // source line; 0 when stripped
}

// Param describes a function parameter's frame slot.
type Param struct {
	Off int32 // frame offset where the VM stores the argument
	W   Width // value width
}

// Function is a compiled MiniC function.
type Function struct {
	Name      string // empty when stripped
	NumRegs   int32
	FrameSize int32
	Params    []Param
	RetW      Width // 0 for void
	Code      []Instr
	Vars      []VarInfo // debug: locals and params; nil when stripped
}

// VarInfo is debug information for one variable (local or global).
type VarInfo struct {
	Name string
	Type int32 // index into Module.Types
	Off  int32 // frame offset (locals) or globals-region offset
	Line int32 // declaration line (scope begins here); 0 for globals
}

// TypeKind classifies a debug type entry.
type TypeKind uint8

// Debug type kinds.
const (
	KVoid TypeKind = iota
	KInt
	KPtr
	KArray
	KStruct
)

// FieldInfo is a struct member in the debug type table.
type FieldInfo struct {
	Name string
	Type int32
	Off  int32
}

// TypeInfo is one entry of the debug type table, the DWARF stand-in
// that the recipient-side data structure traversal (Figure 6) walks.
type TypeInfo struct {
	Kind   TypeKind
	Name   string // struct name, if any
	Size   int32  // size in bytes
	Signed bool   // KInt
	W      Width  // KInt
	Elem   int32  // KPtr/KArray element type
	Count  int32  // KArray length
	Fields []FieldInfo
}

// GlobalBlock records the extent of one global variable so the VM can
// bounds-check accesses to statically allocated buffers (gif2tiff-style
// overflows). This is runtime allocation metadata, not symbolic debug
// information, so stripping keeps it.
type GlobalBlock struct {
	Off  int32
	Size int32
}

// Module is a complete compiled program image.
type Module struct {
	Name         string
	Funcs        []*Function
	Entry        int32 // index of main
	Globals      []byte
	GlobalBlocks []GlobalBlock
	GlobalVars   []VarInfo  // nil when stripped
	Types        []TypeInfo // nil when stripped
	Stripped     bool
}

// FuncByName returns the function with the given name, or nil.
func (m *Module) FuncByName(name string) (*Function, int) {
	for i, f := range m.Funcs {
		if f.Name == name {
			return f, i
		}
	}
	return nil, -1
}

// Strip removes all symbolic information: names, debug variables,
// types, and the line table. The result models a stripped binary —
// exactly what Code Phage requires of donors.
func (m *Module) Strip() {
	m.Stripped = true
	m.GlobalVars = nil
	m.Types = nil
	for i, f := range m.Funcs {
		f.Name = fmt.Sprintf("f%d", i)
		f.Vars = nil
		for j := range f.Code {
			f.Code[j].Line = 0
		}
	}
}

// Clone returns a deep copy of the module.
func (m *Module) Clone() *Module {
	c := *m
	c.Funcs = make([]*Function, len(m.Funcs))
	for i, f := range m.Funcs {
		nf := *f
		nf.Params = append([]Param(nil), f.Params...)
		nf.Code = make([]Instr, len(f.Code))
		for j, in := range f.Code {
			in.Args = append([]Reg(nil), in.Args...)
			nf.Code[j] = in
		}
		nf.Vars = append([]VarInfo(nil), f.Vars...)
		c.Funcs[i] = &nf
	}
	c.Globals = append([]byte(nil), m.Globals...)
	c.GlobalVars = append([]VarInfo(nil), m.GlobalVars...)
	c.Types = append([]TypeInfo(nil), m.Types...)
	return &c
}

// Validate checks structural invariants: register and jump-target
// ranges, parameter consistency, entry point presence.
func (m *Module) Validate() error {
	if m.Entry < 0 || int(m.Entry) >= len(m.Funcs) {
		return fmt.Errorf("ir: entry index %d out of range", m.Entry)
	}
	for fi, f := range m.Funcs {
		n := int32(len(f.Code))
		if n == 0 {
			return fmt.Errorf("ir: function %d (%s) has no code", fi, f.Name)
		}
		for pc, in := range f.Code {
			bad := func(format string, args ...interface{}) error {
				prefix := fmt.Sprintf("ir: %s+%d: ", f.Name, pc)
				return fmt.Errorf(prefix+format, args...)
			}
			checkReg := func(r Reg) error {
				if r < 0 || int32(r) >= f.NumRegs {
					return bad("register %d out of range (NumRegs=%d)", r, f.NumRegs)
				}
				return nil
			}
			switch in.Op {
			case Jmp:
				if in.Target < 0 || in.Target >= n {
					return bad("jump target %d out of range", in.Target)
				}
			case Br:
				if in.Target < 0 || in.Target >= n || in.Target2 < 0 || in.Target2 >= n {
					return bad("branch targets %d/%d out of range", in.Target, in.Target2)
				}
				if err := checkReg(in.A); err != nil {
					return err
				}
			case Call:
				if in.Fn < 0 || int(in.Fn) >= len(m.Funcs) {
					return bad("call target %d out of range", in.Fn)
				}
				callee := m.Funcs[in.Fn]
				if len(in.Args) != len(callee.Params) {
					return bad("call to %s with %d args, want %d",
						callee.Name, len(in.Args), len(callee.Params))
				}
				for _, a := range in.Args {
					if err := checkReg(a); err != nil {
						return err
					}
				}
			case CallB:
				for _, a := range in.Args {
					if err := checkReg(a); err != nil {
						return err
					}
				}
			case Ret:
				if f.RetW != 0 {
					if err := checkReg(in.A); err != nil {
						return err
					}
				}
			}
			if in.Op.IsBinary() {
				if err := checkReg(in.A); err != nil {
					return err
				}
				if err := checkReg(in.B); err != nil {
					return err
				}
			}
		}
		last := f.Code[n-1].Op
		if last != Ret && last != Jmp && last != Br {
			return fmt.Errorf("ir: function %s does not end in a terminator", f.Name)
		}
	}
	return nil
}
