package patch

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"codephage/internal/fsatomic"
)

// Store is a content-addressed artifact directory: every artifact is
// persisted as <key>.patch where key is the hex SHA-256 of the
// encoded bytes, written through the crash-safe atomic writer. A
// store survives daemon restarts — keys are self-authenticating, so
// anything that decodes and matches its filename is trustworthy.
type Store struct{ dir string }

const fileExt = ".patch"

// NewStore opens (creating if needed) an artifact directory.
func NewStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Put persists the artifact under its content key and returns the
// key. Re-putting an identical artifact is a no-op rewrite of the
// same bytes to the same name.
func (s *Store) Put(a *Artifact) (string, error) {
	data := a.Encode()
	key := a.Key()
	if err := fsatomic.WriteFile(s.path(key), data, 0o644); err != nil {
		return "", err
	}
	return key, nil
}

// Bytes returns the encoded artifact for key, verified against the
// key before it is returned (a store directory is just files; bit rot
// or tampering must not survive a fetch).
func (s *Store) Bytes(key string) ([]byte, error) {
	if err := checkKey(key); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		return nil, err
	}
	a, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("patch: store entry %s: %w", key, err)
	}
	if got := a.Key(); got != key {
		return nil, fmt.Errorf("patch: store entry %s has content key %s", key, got)
	}
	return data, nil
}

// Get decodes the artifact for key.
func (s *Store) Get(key string) (*Artifact, error) {
	data, err := s.Bytes(key)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}

// Has reports whether key is present (without decoding it).
func (s *Store) Has(key string) bool {
	if checkKey(key) != nil {
		return false
	}
	_, err := os.Stat(s.path(key))
	return err == nil
}

// Keys lists the stored artifact keys in sorted order. Files that are
// not well-formed store entries are skipped, not errors: the
// directory may be shared with other state.
func (s *Store) Keys() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	var keys []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, fileExt) {
			continue
		}
		key := strings.TrimSuffix(name, fileExt)
		if checkKey(key) != nil {
			continue
		}
		keys = append(keys, key)
	}
	sort.Strings(keys)
	return keys, nil
}

func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key+fileExt)
}

// checkKey rejects anything that is not a lowercase hex SHA-256,
// which doubles as path-traversal protection for keys that arrive
// over HTTP.
func checkKey(key string) error {
	if len(key) != 64 {
		return fmt.Errorf("patch: malformed key %q", key)
	}
	for _, c := range key {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return fmt.Errorf("patch: malformed key %q", key)
		}
	}
	return nil
}

// WriteFile writes an encoded artifact to an arbitrary path through
// the atomic writer (the CLI's `patch build -o` path).
func WriteFile(path string, a *Artifact) error {
	return fsatomic.WriteFile(path, a.Encode(), 0o644)
}

// ReadFile loads and decodes an artifact from an arbitrary path.
func ReadFile(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	a, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("patch: %s: %w", path, err)
	}
	return a, nil
}
