package patch

import (
	"bytes"
	"crypto/sha256"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"codephage/internal/compile"
)

// vulnSrc reads a length byte and writes that many bytes into a
// 4-byte buffer: inputs over 4 trap out of bounds.
const vulnSrc = `
void main() {
	u32 n = (u32)in_u8();
	u8* buf = alloc(4);
	u32 i = 0;
	while (i < n) {
		buf[i] = (u8)i;
		i = i + 1;
	}
	out((u64)n);
	exit(0);
}
`

// guardedSrc is vulnSrc with the transferred guard: the error input
// is rejected before the overflowing loop, benign inputs are
// trace-identical (the guard adds no observable events).
const guardedSrc = `
void main() {
	u32 n = (u32)in_u8();
	if (n > 4) { exit(-1); }
	u8* buf = alloc(4);
	u32 i = 0;
	while (i < n) {
		buf[i] = (u8)i;
		i = i + 1;
	}
	out((u64)n);
	exit(0);
}
`

// images compiles the pair and returns both module images.
func images(t *testing.T) (orig, patched []byte) {
	t.Helper()
	origMod, err := compile.CompileSource("vuln", vulnSrc)
	if err != nil {
		t.Fatalf("compiling original: %v", err)
	}
	patchedMod, err := compile.CompileSource("vuln", guardedSrc)
	if err != nil {
		t.Fatalf("compiling patched: %v", err)
	}
	orig, err = origMod.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	patched, err = patchedMod.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	return orig, patched
}

// testArtifact builds a fully populated artifact over the compiled
// pair, with the oracle inputs the Verify tests rely on.
func testArtifact(t *testing.T) (*Artifact, []byte, []byte) {
	t.Helper()
	orig, patched := images(t)
	a, err := New(orig, patched)
	if err != nil {
		t.Fatal(err)
	}
	a.Recipient = "vuln"
	a.Target = "vuln-overflow"
	a.Donor = "guard-donor"
	a.Format = "raw"
	a.Mode = "exit"
	a.Fingerprint = "cafebabe"
	a.Checks = []Check{{Excised: "n <= 4", Translated: "n <= 4", InsertFn: "main", InsertLine: 3}}
	a.ErrorInputs = [][]byte{{200}}
	a.Benign = [][]byte{{0}, {3}, {4}}
	return a, orig, patched
}

func TestApplyRollbackRoundTrip(t *testing.T) {
	a, orig, patched := testArtifact(t)
	got, err := a.ApplyBytes(orig)
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	if !bytes.Equal(got, patched) {
		t.Fatal("applied image differs from the pipeline's patched image")
	}
	back, err := a.RollbackBytes(got)
	if err != nil {
		t.Fatalf("rollback: %v", err)
	}
	if !bytes.Equal(back, orig) {
		t.Fatal("rollback is not byte-identical to the original")
	}
}

func TestApplyRejectsWrongInput(t *testing.T) {
	a, orig, patched := testArtifact(t)
	// Tampered original: checksum mismatch.
	bad := append([]byte(nil), orig...)
	bad[len(bad)/2] ^= 0xFF
	if _, err := a.ApplyBytes(bad); err == nil {
		t.Fatal("apply accepted a tampered original")
	}
	// Applying to the already-patched image must fail too.
	if _, err := a.ApplyBytes(patched); err == nil {
		t.Fatal("apply accepted the patched image as the original")
	}
	// Truncated input: length mismatch.
	if _, err := a.ApplyBytes(orig[:len(orig)-1]); err == nil {
		t.Fatal("apply accepted a truncated original")
	}
}

func TestDiffShapes(t *testing.T) {
	cases := []struct {
		name          string
		orig, patched []byte
	}{
		{"same-length-one-run", []byte("aaaabbbbcccc"), []byte("aaaaXXXXcccc")},
		{"same-length-two-runs", []byte("aaaabbbbcccc"), []byte("aXaabbbbccXc")},
		{"longer", []byte("aaaacccc"), []byte("aaaabbbbcccc")},
		{"shorter", []byte("aaaabbbbcccc"), []byte("aaaacccc")},
		{"prefix-only", []byte("aaaa"), []byte("aaaabbbb")},
		{"disjoint", []byte("abcd"), []byte("wxyz")},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			a, err := New(c.orig, c.patched)
			if err != nil {
				t.Fatal(err)
			}
			got, err := a.ApplyBytes(c.orig)
			if err != nil {
				t.Fatalf("apply: %v", err)
			}
			if !bytes.Equal(got, c.patched) {
				t.Fatalf("apply = %q, want %q", got, c.patched)
			}
			back, err := a.RollbackBytes(got)
			if err != nil {
				t.Fatalf("rollback: %v", err)
			}
			if !bytes.Equal(back, c.orig) {
				t.Fatalf("rollback = %q, want %q", back, c.orig)
			}
		})
	}
	if _, err := New([]byte("same"), []byte("same")); err == nil {
		t.Fatal("New accepted identical images")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	a, _, _ := testArtifact(t)
	data := a.Encode()
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(a, got) {
		t.Fatal("decoded artifact differs from the original")
	}
	// Canonical encoding: re-encoding the decoded artifact reproduces
	// the bytes, so the content key is stable across a round trip.
	if !bytes.Equal(got.Encode(), data) {
		t.Fatal("re-encoding is not canonical")
	}
	if got.Key() != a.Key() {
		t.Fatal("content key changed across a round trip")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	a, _, _ := testArtifact(t)
	data := a.Encode()

	if _, err := Decode(nil); err == nil {
		t.Fatal("decoded empty input")
	}
	if _, err := Decode([]byte("NOTMAGIC" + strings.Repeat("x", 64))); err == nil {
		t.Fatal("decoded bad magic")
	}
	for _, n := range []int{1, len(data) / 2, len(data) - 1} {
		if _, err := Decode(data[:n]); err == nil {
			t.Fatalf("decoded truncation to %d bytes", n)
		}
	}
	// Every single-byte flip must be caught by the trailer checksum.
	for _, off := range []int{8, len(data) / 3, len(data) - 1} {
		bad := append([]byte(nil), data...)
		bad[off] ^= 0x01
		if _, err := Decode(bad); err == nil {
			t.Fatalf("decoded artifact with byte %d flipped", off)
		}
	}
}

// reseal recomputes the trailer so structural corruption reaches the
// validator instead of being caught by the checksum first.
func reseal(data []byte) []byte {
	body := data[:len(data)-sha256.Size]
	sum := sha256.Sum256(body)
	return append(append([]byte(nil), body...), sum[:]...)
}

func TestValidateInvariants(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Artifact)
	}{
		{"mid-hunk-length-change", func(a *Artifact) {
			a.Hunks = []Hunk{
				{Offset: 0, Old: []byte("ab"), New: []byte("a")},
				{Offset: 4, Old: []byte("cd"), New: []byte("ce")},
			}
			a.OriginalLen, a.PatchedLen = 8, 7
		}},
		{"overlapping-hunks", func(a *Artifact) {
			a.Hunks = []Hunk{
				{Offset: 0, Old: []byte("abcd"), New: []byte("wxyz")},
				{Offset: 2, Old: []byte("cd"), New: []byte("ef")},
			}
			a.OriginalLen, a.PatchedLen = 8, 8
		}},
		{"hunk-past-end", func(a *Artifact) {
			a.Hunks = []Hunk{{Offset: 6, Old: []byte("abcd"), New: []byte("wxyz")}}
			a.OriginalLen, a.PatchedLen = 8, 8
		}},
		{"delta-mismatch", func(a *Artifact) {
			a.Hunks = []Hunk{{Offset: 0, Old: []byte("ab"), New: []byte("a")}}
			a.OriginalLen, a.PatchedLen = 8, 8
		}},
		{"empty-hunk", func(a *Artifact) {
			a.Hunks = []Hunk{{Offset: 0}}
			a.OriginalLen, a.PatchedLen = 8, 8
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			a := &Artifact{}
			c.mutate(a)
			if err := a.validate(); err == nil {
				t.Fatal("validate accepted a malformed artifact")
			}
			// The same corruption must be unreachable through Decode.
			if _, err := Decode(reseal(a.Encode())); err == nil {
				t.Fatal("Decode accepted a malformed artifact")
			}
		})
	}
}

func TestVerifyOracle(t *testing.T) {
	a, orig, patched := testArtifact(t)
	if err := a.Verify(orig, patched); err != nil {
		t.Fatalf("oracle rejected the genuine patch: %v", err)
	}

	// A patch that does not eliminate the error (guard threshold too
	// high) must be rejected on the error input.
	lenient := strings.Replace(guardedSrc, "n > 4", "n > 250", 1)
	if err := a.Verify(orig, compileImage(t, lenient)); err == nil {
		t.Fatal("oracle accepted a patch that still traps on the error input")
	}

	// A patch that rejects benign inputs (guard threshold too low)
	// must be rejected by the trace comparison.
	strict := strings.Replace(guardedSrc, "n > 4", "n > 2", 1)
	if err := a.Verify(orig, compileImage(t, strict)); err == nil {
		t.Fatal("oracle accepted a patch that changes benign behaviour")
	}

	// Non-module bytes must fail cleanly.
	if err := a.Verify([]byte("junk"), patched); err == nil {
		t.Fatal("oracle accepted a non-module original")
	}
	_ = patched
}

func compileImage(t *testing.T, src string) []byte {
	t.Helper()
	mod, err := compile.CompileSource("vuln", src)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mod.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestApplyRollbackFiles(t *testing.T) {
	a, orig, patched := testArtifact(t)
	path := filepath.Join(t.TempDir(), "vuln.mvx")
	if err := os.WriteFile(path, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Apply(a, path); err != nil {
		t.Fatalf("apply: %v", err)
	}
	got, _ := os.ReadFile(path)
	if !bytes.Equal(got, patched) {
		t.Fatal("applied file differs from the pipeline's patched image")
	}
	// Re-applying must fail (the file is no longer the original) and
	// leave the file untouched.
	if err := Apply(a, path); err == nil {
		t.Fatal("apply succeeded twice")
	}
	got, _ = os.ReadFile(path)
	if !bytes.Equal(got, patched) {
		t.Fatal("failed apply modified the file")
	}
	if err := Rollback(a, path); err != nil {
		t.Fatalf("rollback: %v", err)
	}
	got, _ = os.ReadFile(path)
	if !bytes.Equal(got, orig) {
		t.Fatal("rollback is not byte-identical to the original")
	}
}

func TestStore(t *testing.T) {
	a, _, _ := testArtifact(t)
	st, err := NewStore(filepath.Join(t.TempDir(), "patches"))
	if err != nil {
		t.Fatal(err)
	}
	key, err := st.Put(a)
	if err != nil {
		t.Fatal(err)
	}
	if key != a.Key() {
		t.Fatalf("Put key %s, artifact key %s", key, a.Key())
	}
	got, err := st.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, got) {
		t.Fatal("stored artifact differs")
	}
	keys, err := st.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != key {
		t.Fatalf("Keys = %v, want [%s]", keys, key)
	}
	if !st.Has(key) {
		t.Fatal("Has missed a stored key")
	}

	// Tampered entries must not survive a fetch.
	path := filepath.Join(st.Dir(), key+fileExt)
	data, _ := os.ReadFile(path)
	data[len(data)/2] ^= 0xFF
	os.WriteFile(path, data, 0o644)
	if _, err := st.Get(key); err == nil {
		t.Fatal("Get returned a tampered artifact")
	}

	// Keys that are not hex sha256 (including traversal attempts) are
	// rejected before touching the filesystem.
	for _, bad := range []string{"", "short", "../../etc/passwd", strings.Repeat("Z", 64)} {
		if _, err := st.Bytes(bad); err == nil {
			t.Fatalf("Bytes accepted malformed key %q", bad)
		}
	}
}
