package patch

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// Binary artifact format, modeled on the warm-state snapshot codec:
// little-endian, length-prefixed, versioned by a magic string, sealed
// by a SHA-256 trailer over everything before it, and decoded
// defensively — every count is bounds-checked before an allocation
// depends on it, and any malformed input (truncation, stale version,
// bit rot, hostile length fields) rejects the whole artifact with an
// error wrapping ErrFormat, never a panic or a silently wrong patch.

const (
	patchMagic = "CPPATCH1"

	// Decode guards: upper bounds a well-formed artifact never
	// exceeds, applied before any length-driven allocation.
	maxStrLen    = 1 << 16
	maxChecks    = 1 << 12
	maxInputs    = 1 << 12
	maxInputLen  = 1 << 24
	maxHunks     = 1 << 20
	maxHunkLen   = 1 << 26
	maxImageLen  = 1 << 30
	trailerBytes = sha256.Size
)

// ErrFormat is wrapped by every artifact decode failure.
var ErrFormat = errors.New("patch: invalid artifact")

func formatErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrFormat, fmt.Sprintf(format, args...))
}

type encoder struct{ buf []byte }

func (e *encoder) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *encoder) u32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *encoder) u64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *encoder) raw(b []byte) { e.buf = append(e.buf, b...) }
func (e *encoder) str(s string) { e.u32(uint32(len(s))); e.raw([]byte(s)) }
func (e *encoder) blob(b []byte) {
	e.u32(uint32(len(b)))
	e.raw(b)
}

type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = formatErr(format, args...)
	}
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.buf) {
		d.fail("truncated at offset %d (need %d bytes)", d.off, n)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *decoder) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// count reads a u32 element count, rejecting hostile values before
// the caller allocates anything proportional to it.
func (d *decoder) count(what string, max int) int {
	n := int(d.u32())
	if d.err == nil && n > max {
		d.fail("%s count %d exceeds limit %d", what, n, max)
	}
	if d.err != nil {
		return 0
	}
	return n
}

func (d *decoder) str(what string) string {
	n := d.count(what, maxStrLen)
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

func (d *decoder) blob(what string, max int) []byte {
	n := d.count(what, max)
	b := d.take(n)
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

// Encode serializes the artifact. The encoding is canonical: the same
// artifact always produces the same bytes, which is what makes Key a
// stable content address.
func (a *Artifact) Encode() []byte {
	e := &encoder{}
	e.raw([]byte(patchMagic))
	e.str(a.Recipient)
	e.str(a.Target)
	e.str(a.Donor)
	e.str(a.Format)
	e.str(a.Mode)
	e.str(a.Fingerprint)

	e.u32(uint32(len(a.Checks)))
	for _, c := range a.Checks {
		e.str(c.Excised)
		e.str(c.Translated)
		e.str(c.InsertFn)
		e.u32(uint32(c.InsertLine))
	}

	e.u32(uint32(len(a.ErrorInputs)))
	for _, in := range a.ErrorInputs {
		e.blob(in)
	}
	e.u32(uint32(len(a.Benign)))
	for _, in := range a.Benign {
		e.blob(in)
	}

	e.u64(a.OriginalLen)
	e.raw(a.OriginalSum[:])
	e.u64(a.PatchedLen)
	e.raw(a.PatchedSum[:])

	e.u32(uint32(len(a.Hunks)))
	for _, h := range a.Hunks {
		e.u64(h.Offset)
		e.blob(h.Old)
		e.blob(h.New)
	}

	sum := sha256.Sum256(e.buf)
	e.raw(sum[:])
	return e.buf
}

// Decode parses an encoded artifact, verifying the magic, the
// trailer checksum, and every structural invariant the apply path
// relies on (sorted non-overlapping hunks, only the last hunk
// length-changing, consistent endpoint lengths).
func Decode(data []byte) (*Artifact, error) {
	if len(data) < len(patchMagic)+trailerBytes {
		return nil, formatErr("short input (%d bytes)", len(data))
	}
	if string(data[:len(patchMagic)]) != patchMagic {
		return nil, formatErr("bad magic %q", data[:len(patchMagic)])
	}
	body, trailer := data[:len(data)-trailerBytes], data[len(data)-trailerBytes:]
	sum := sha256.Sum256(body)
	if !bytes.Equal(sum[:], trailer) {
		return nil, formatErr("checksum mismatch")
	}

	d := &decoder{buf: body, off: len(patchMagic)}
	a := &Artifact{
		Recipient:   d.str("recipient"),
		Target:      d.str("target"),
		Donor:       d.str("donor"),
		Format:      d.str("format"),
		Mode:        d.str("mode"),
		Fingerprint: d.str("fingerprint"),
	}

	nChecks := d.count("check", maxChecks)
	for i := 0; i < nChecks && d.err == nil; i++ {
		a.Checks = append(a.Checks, Check{
			Excised:    d.str("excised"),
			Translated: d.str("translated"),
			InsertFn:   d.str("insert fn"),
			InsertLine: int32(d.u32()),
		})
	}

	nErr := d.count("error input", maxInputs)
	for i := 0; i < nErr && d.err == nil; i++ {
		a.ErrorInputs = append(a.ErrorInputs, d.blob("error input", maxInputLen))
	}
	nBen := d.count("benign input", maxInputs)
	for i := 0; i < nBen && d.err == nil; i++ {
		a.Benign = append(a.Benign, d.blob("benign input", maxInputLen))
	}

	a.OriginalLen = d.u64()
	copy(a.OriginalSum[:], d.take(sha256.Size))
	a.PatchedLen = d.u64()
	copy(a.PatchedSum[:], d.take(sha256.Size))

	nHunks := d.count("hunk", maxHunks)
	for i := 0; i < nHunks && d.err == nil; i++ {
		a.Hunks = append(a.Hunks, Hunk{
			Offset: d.u64(),
			Old:    d.blob("hunk old", maxHunkLen),
			New:    d.blob("hunk new", maxHunkLen),
		})
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(body) {
		return nil, formatErr("%d trailing bytes", len(body)-d.off)
	}
	if err := a.validate(); err != nil {
		return nil, err
	}
	return a, nil
}

// validate enforces the structural invariants the apply/rollback
// machinery assumes. It runs on every decode so a hostile or corrupt
// artifact is rejected at the boundary, and on Apply so a
// hand-constructed artifact gets the same scrutiny.
func (a *Artifact) validate() error {
	if a.OriginalLen > maxImageLen || a.PatchedLen > maxImageLen {
		return formatErr("image length exceeds limit")
	}
	var delta int64
	prevEnd := int64(-1)
	for i, h := range a.Hunks {
		if len(h.Old) == 0 && len(h.New) == 0 {
			return formatErr("hunk %d is empty", i)
		}
		if int64(h.Offset) < prevEnd {
			return formatErr("hunk %d overlaps or is out of order", i)
		}
		end := int64(h.Offset) + int64(len(h.Old))
		if end > int64(a.OriginalLen) {
			return formatErr("hunk %d exceeds the original image (%d > %d)", i, end, a.OriginalLen)
		}
		if len(h.Old) != len(h.New) && i != len(a.Hunks)-1 {
			return formatErr("hunk %d changes length but is not the final hunk", i)
		}
		delta += int64(len(h.New)) - int64(len(h.Old))
		prevEnd = end
	}
	if int64(a.OriginalLen)+delta != int64(a.PatchedLen) {
		return formatErr("hunk deltas (%+d) do not bridge the image lengths (%d -> %d)",
			delta, a.OriginalLen, a.PatchedLen)
	}
	return nil
}
