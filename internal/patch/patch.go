// Package patch defines the verifiable patch artifact: a versioned,
// checksummed, content-addressed record of one successful code
// transfer that is sufficient on its own to apply the patch to a
// recipient module image, to prove it applied exactly (byte-identical
// to the image the pipeline produced), to re-validate it against the
// transfer's own conformance oracle, and to roll it back to the
// byte-identical original.
//
// An artifact pins both endpoints of the transformation — length and
// SHA-256 of the original and the patched module image — and carries
// the delta between them as offset-ranged hunks over the original
// image. Alongside the delta it embeds provenance (donor, recipient,
// target, the excised and translated check conditions, the insertion
// point, and a fingerprint of the engine options that affect
// verdicts) and the oracle inputs themselves (the eliminated error
// inputs and the benign suite), so apply-time verification needs no
// access to the pipeline that produced it.
//
// Artifacts are content-addressed: Key is the SHA-256 of the encoded
// bytes, so two pipelines that produce the same patch produce the
// same key, and a fetched artifact can be authenticated against its
// own name.
package patch

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// Check records the provenance of one transferred check: what was
// excised from the donor, what it was translated into, and where it
// landed in the recipient.
type Check struct {
	Excised    string // donor-side field-level condition
	Translated string // recipient-side translated condition
	InsertFn   string // recipient function receiving the guard
	InsertLine int32  // 1-based source line of the insertion
}

// Hunk is one contiguous byte-range replacement over the original
// module image. Offset indexes the ORIGINAL image; Old is the exact
// byte run being replaced and New its replacement. All hunks except
// the last must preserve length (len(Old) == len(New)) so that every
// offset is valid in both images and rollback is the literal mirror
// of apply.
type Hunk struct {
	Offset uint64
	Old    []byte
	New    []byte
}

// Artifact is the complete verifiable patch record.
type Artifact struct {
	// Provenance.
	Recipient   string // recipient application name
	Target      string // registry target ID ("" when unknown)
	Donor       string // donor that supplied the checks
	Format      string // input dissector name
	Mode        string // patch firing behaviour ("exit" or "return0")
	Fingerprint string // hex hash of the verdict-affecting engine options
	Checks      []Check

	// Embedded oracle inputs: the error inputs the transfer
	// eliminated and the benign suite the patched module must remain
	// trace-identical on.
	ErrorInputs [][]byte
	Benign      [][]byte

	// Image endpoints.
	OriginalLen uint64
	OriginalSum [sha256.Size]byte
	PatchedLen  uint64
	PatchedSum  [sha256.Size]byte

	// The delta, in strictly increasing non-overlapping offsets.
	Hunks []Hunk
}

// Key returns the artifact's content address: the hex SHA-256 of its
// canonical encoding. Identical transfers — same provenance, same
// inputs, same images — yield identical keys regardless of where the
// artifact was built.
func (a *Artifact) Key() string {
	sum := sha256.Sum256(a.Encode())
	return hex.EncodeToString(sum[:])
}

// Clone returns a deep copy safe to retain across concurrent readers.
func (a *Artifact) Clone() *Artifact {
	if a == nil {
		return nil
	}
	c := *a
	c.Checks = append([]Check(nil), a.Checks...)
	c.ErrorInputs = cloneByteSlices(a.ErrorInputs)
	c.Benign = cloneByteSlices(a.Benign)
	c.Hunks = make([]Hunk, len(a.Hunks))
	for i, h := range a.Hunks {
		c.Hunks[i] = Hunk{
			Offset: h.Offset,
			Old:    append([]byte(nil), h.Old...),
			New:    append([]byte(nil), h.New...),
		}
	}
	return &c
}

func cloneByteSlices(in [][]byte) [][]byte {
	if in == nil {
		return nil
	}
	out := make([][]byte, len(in))
	for i, b := range in {
		out[i] = append([]byte(nil), b...)
	}
	return out
}

// Diff computes the hunk set transforming orig into patched and fills
// in both image endpoints. Equal-length regions are split into
// minimal changed byte runs; a length difference is confined to a
// single final hunk covering the unmatched middle, so the "only the
// tail hunk changes length" apply/rollback invariant holds by
// construction.
func Diff(orig, patched []byte) ([]Hunk, error) {
	if bytes.Equal(orig, patched) {
		return nil, fmt.Errorf("patch: original and patched images are identical")
	}
	// Strip the common prefix and suffix; the interesting bytes are in
	// the middle.
	p := 0
	for p < len(orig) && p < len(patched) && orig[p] == patched[p] {
		p++
	}
	s := 0
	for s < len(orig)-p && s < len(patched)-p && orig[len(orig)-1-s] == patched[len(patched)-1-s] {
		s++
	}
	midO := orig[p : len(orig)-s]
	midP := patched[p : len(patched)-s]

	if len(midO) != len(midP) {
		// One length-changing hunk; it is also the last hunk.
		return []Hunk{{
			Offset: uint64(p),
			Old:    append([]byte(nil), midO...),
			New:    append([]byte(nil), midP...),
		}}, nil
	}

	// Same length: emit one hunk per maximal changed run.
	var hunks []Hunk
	for i := 0; i < len(midO); {
		if midO[i] == midP[i] {
			i++
			continue
		}
		j := i
		for j < len(midO) && midO[j] != midP[j] {
			j++
		}
		hunks = append(hunks, Hunk{
			Offset: uint64(p + i),
			Old:    append([]byte(nil), midO[i:j]...),
			New:    append([]byte(nil), midP[i:j]...),
		})
		i = j
	}
	return hunks, nil
}

// New builds an artifact from the two module images and provenance,
// computing the hunks and both checksummed endpoints. The returned
// artifact round-trips: ApplyBytes(orig) == patched and
// RollbackBytes(patched) == orig, byte for byte.
func New(orig, patched []byte) (*Artifact, error) {
	hunks, err := Diff(orig, patched)
	if err != nil {
		return nil, err
	}
	return &Artifact{
		OriginalLen: uint64(len(orig)),
		OriginalSum: sha256.Sum256(orig),
		PatchedLen:  uint64(len(patched)),
		PatchedSum:  sha256.Sum256(patched),
		Hunks:       hunks,
	}, nil
}
