package patch

import (
	"bytes"
	"testing"
)

// FuzzDecode drives arbitrary bytes through the artifact decoder. The
// decoder's contract: never panic, never allocate proportionally to a
// hostile length field, and — when it does accept — produce an
// artifact whose canonical re-encoding decodes to the same value
// (round-trip stability is what content addressing stands on).
func FuzzDecode(f *testing.F) {
	// Seeds: a well-formed artifact, structural near-misses, and the
	// checked-in corpus under testdata/fuzz/FuzzDecode.
	valid := (&Artifact{
		Recipient:   "vuln",
		Donor:       "guard-donor",
		Format:      "raw",
		Mode:        "exit",
		Checks:      []Check{{Excised: "n <= 4", InsertFn: "main", InsertLine: 3}},
		ErrorInputs: [][]byte{{200}},
		Benign:      [][]byte{{1}},
		OriginalLen: 4,
		OriginalSum: [32]byte{1},
		PatchedLen:  4,
		PatchedSum:  [32]byte{2},
		Hunks:       []Hunk{{Offset: 0, Old: []byte("ab"), New: []byte("xy")}},
	}).Encode()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(patchMagic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := Decode(data)
		if err != nil {
			return
		}
		re := a.Encode()
		b, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoding of an accepted artifact does not decode: %v", err)
		}
		if !bytes.Equal(b.Encode(), re) {
			t.Fatal("re-encoding is not a fixed point")
		}
		if a.Key() != b.Key() {
			t.Fatal("content key unstable across a round trip")
		}
	})
}
