package patch

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"

	"codephage/internal/fsatomic"
	"codephage/internal/ir"
	"codephage/internal/vm"
)

// ErrVerify wraps every apply-time verification failure: checksum
// mismatches, hunk context mismatches, and oracle rejections. A
// failed Apply leaves the target byte-identical to what it found.
var ErrVerify = fmt.Errorf("patch: verification failed")

func verifyErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrVerify, fmt.Sprintf(format, args...))
}

// ApplyBytes transforms the original module image into the patched
// one: it verifies the original's length and checksum, verifies every
// hunk's Old bytes in place before substituting New, and verifies the
// result against the patched length and checksum. The returned bytes
// are exactly the image the producing pipeline validated — any
// deviation, anywhere, is an error rather than a best-effort patch.
func (a *Artifact) ApplyBytes(orig []byte) ([]byte, error) {
	if err := a.validate(); err != nil {
		return nil, err
	}
	return transform(orig, a.Hunks, a.OriginalLen, a.OriginalSum, a.PatchedLen, a.PatchedSum, false)
}

// RollbackBytes is the exact inverse of ApplyBytes: patched image in,
// byte-identical original out, with the same end-to-end verification.
func (a *Artifact) RollbackBytes(patched []byte) ([]byte, error) {
	if err := a.validate(); err != nil {
		return nil, err
	}
	return transform(patched, a.Hunks, a.PatchedLen, a.PatchedSum, a.OriginalLen, a.OriginalSum, true)
}

// transform applies the hunks in one direction. Hunk offsets index
// the original image; because every non-final hunk preserves length,
// those offsets are equally valid in the patched image, which is what
// lets rollback reuse them with Old and New swapped.
func transform(in []byte, hunks []Hunk, inLen uint64, inSum [sha256.Size]byte,
	outLen uint64, outSum [sha256.Size]byte, reverse bool) ([]byte, error) {
	if uint64(len(in)) != inLen {
		return nil, verifyErr("input image is %d bytes, artifact expects %d", len(in), inLen)
	}
	if got := sha256.Sum256(in); got != inSum {
		return nil, verifyErr("input image checksum mismatch")
	}
	out := make([]byte, 0, outLen)
	pos := 0
	for i, h := range hunks {
		from, to := h.Old, h.New
		if reverse {
			from, to = to, from
		}
		off := int(h.Offset)
		if off < pos || off+len(from) > len(in) {
			return nil, verifyErr("hunk %d out of range", i)
		}
		if !bytes.Equal(in[off:off+len(from)], from) {
			return nil, verifyErr("hunk %d context mismatch at offset %d", i, off)
		}
		out = append(out, in[pos:off]...)
		out = append(out, to...)
		pos = off + len(from)
	}
	out = append(out, in[pos:]...)
	if uint64(len(out)) != outLen {
		return nil, verifyErr("output image is %d bytes, artifact expects %d", len(out), outLen)
	}
	if got := sha256.Sum256(out); got != outSum {
		return nil, verifyErr("output image checksum mismatch")
	}
	return out, nil
}

// Verify re-runs the transfer's conformance oracle on the two images,
// using the inputs embedded in the artifact:
//
//  1. the patched module must run every recorded error input to
//     completion — the transferred guard eliminated the error, so a
//     trap means the patch does not do what its provenance claims
//     (the exit code is mode-dependent — exit(-1) vs return 0 — so
//     only trap-freedom is required);
//  2. on every benign input the patched module's observable trace
//     (input reads, allocations, frees, outputs, exit) must be
//     identical to the original's, so the patch cannot have bought
//     safety by changing behaviour benign inputs rely on.
//
// Both images must decode as module images; everything else about
// them has already been pinned by the checksums.
func (a *Artifact) Verify(orig, patched []byte) error {
	origMod, err := ir.FromBytes(orig)
	if err != nil {
		return verifyErr("original image does not decode: %v", err)
	}
	patchedMod, err := ir.FromBytes(patched)
	if err != nil {
		return verifyErr("patched image does not decode: %v", err)
	}
	for i, in := range a.ErrorInputs {
		if res := vm.NewRunner(patchedMod).Run(in); !res.OK() {
			return verifyErr("patched module still traps on error input %d: %v", i, res.Trap)
		}
	}
	for i, in := range a.Benign {
		want, wantRes := runTrace(origMod, in)
		got, gotRes := runTrace(patchedMod, in)
		if !wantRes.OK() {
			return verifyErr("original module traps on benign input %d: %v", i, wantRes.Trap)
		}
		if !gotRes.OK() {
			return verifyErr("patched module traps on benign input %d: %v", i, gotRes.Trap)
		}
		// Exit codes need no separate comparison: exit is itself a
		// recorded trace event, so TraceEqual covers it.
		if eq, at := vm.TraceEqual(want, got); !eq {
			return verifyErr("benign input %d diverges at trace event %d (%d vs %d events)",
				i, at, len(want), len(got))
		}
	}
	return nil
}

func runTrace(mod *ir.Module, input []byte) ([]vm.TraceEvent, *vm.Result) {
	rec := &vm.TraceRecorder{}
	r := vm.NewRunner(mod)
	r.Tracer = rec
	res := r.Run(input)
	return rec.Events, res
}

// Apply patches the module image file at path in place: verify the
// original, apply the hunks, verify the patched image, re-run the
// conformance oracle, and only then commit — atomically and durably,
// through the same crash-safe writer the daemon's warm state uses. On
// any failure the file is untouched.
func Apply(a *Artifact, path string) error {
	orig, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	patched, err := a.ApplyBytes(orig)
	if err != nil {
		return err
	}
	if err := a.Verify(orig, patched); err != nil {
		return err
	}
	return fsatomic.WriteFile(path, patched, 0o644)
}

// Rollback restores the byte-identical original module image at path,
// verifying both endpoints the same way Apply does (the oracle needs
// no re-run: the original is the behaviour baseline by definition).
func Rollback(a *Artifact, path string) error {
	patched, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	orig, err := a.RollbackBytes(patched)
	if err != nil {
		return err
	}
	return fsatomic.WriteFile(path, orig, 0o644)
}
