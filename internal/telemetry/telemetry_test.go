package telemetry

import (
	"strings"
	"testing"
	"time"
)

func buildSample(durA, durB time.Duration) *Span {
	root := New("Transfer").Field("recipient", "jasper").Field("target", "492")
	root.SetDuration(durA + durB)
	sel := root.Child("Select").Field("donors", "3")
	sel.SetDuration(durA)
	sel.Metricf("queries", "%d", int(durA)) // volatile, must not affect Structure
	disc := root.Child("Discover")
	disc.SetDuration(durB)
	disc.Child("Compile").Field("unit", "donor").SetDuration(durB / 2)
	return root
}

func TestStructureIgnoresTiming(t *testing.T) {
	a := buildSample(time.Millisecond, 2*time.Millisecond)
	b := buildSample(7*time.Second, 13*time.Microsecond)
	if a.Structure() != b.Structure() {
		t.Fatalf("structure differs across timings:\n%s\nvs\n%s", a.Structure(), b.Structure())
	}
	want := "Transfer recipient=jasper target=492\n" +
		"  Select donors=3\n" +
		"  Discover\n" +
		"    Compile unit=donor\n"
	if got := a.Structure(); got != want {
		t.Fatalf("structure:\n%q\nwant\n%q", got, want)
	}
}

func TestSpanJSONRoundTrip(t *testing.T) {
	a := buildSample(time.Millisecond, 2*time.Millisecond)
	data, err := a.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Structure() != a.Structure() {
		t.Fatalf("structure changed over JSON round trip")
	}
	if back.Duration() != a.Duration() {
		t.Fatalf("duration changed over JSON round trip: %v vs %v", back.Duration(), a.Duration())
	}
}

func TestSelfTime(t *testing.T) {
	root := New("Transfer")
	root.SetDuration(10 * time.Millisecond)
	root.Child("Select").SetDuration(3 * time.Millisecond)
	root.Child("Discover").SetDuration(4 * time.Millisecond)
	if got, want := root.Self(), 3*time.Millisecond; got != want {
		t.Fatalf("self = %v, want %v", got, want)
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := buildSample(time.Millisecond, 2*time.Millisecond)
	b := a.Clone()
	b.Children[0].Name = "mutated"
	b.Children[0].Fields[0].Value = "mutated"
	if a.Children[0].Name != "Select" || a.Children[0].Fields[0].Value != "3" {
		t.Fatal("clone shares state with original")
	}
}

func TestNilSpanIsSafe(t *testing.T) {
	var s *Span
	s.Field("k", "v").Metric("k", "v")
	if c := s.Child("x"); c != nil {
		t.Fatal("nil span produced non-nil child")
	}
	s.SetDuration(time.Second)
	s.Walk(func(*Span) { t.Fatal("walk visited nil span") })
	var sink *Sink
	sink.ObserveTrace(buildSample(1, 2))
	sink.ObserveSolver("equiv.memo", time.Millisecond)
	sink.WriteMetrics(&strings.Builder{})
}

// TestBucketLabelsGolden freezes the histogram boundary rendering: the
// /metrics exposition (and the BENCH_pipeline trajectory) depends on
// these exact `le` strings.
func TestBucketLabelsGolden(t *testing.T) {
	want := []string{
		"1e-06", "2.5e-06", "5e-06",
		"1e-05", "2.5e-05", "5e-05",
		"0.0001", "0.00025", "0.0005",
		"0.001", "0.0025", "0.005",
		"0.01", "0.025", "0.05",
		"0.1", "0.25", "0.5",
		"1", "2.5", "5", "10",
	}
	if len(bucketLabels) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(bucketLabels), len(want))
	}
	for i, w := range want {
		if bucketLabels[i] != w {
			t.Fatalf("bucket %d label = %q, want %q", i, bucketLabels[i], w)
		}
	}
}

func TestHistogramObserveAndExposition(t *testing.T) {
	var h Histogram
	h.Observe(2 * time.Microsecond) // ≤ 2.5e-06
	h.Observe(3 * time.Millisecond) // ≤ 0.005
	h.Observe(20 * time.Second)     // +Inf only
	if h.Count() != 3 {
		t.Fatalf("count = %d, want 3", h.Count())
	}
	var b strings.Builder
	h.write(&b, "m", "")
	out := b.String()
	for _, line := range []string{
		`m_bucket{le="1e-06"} 0`,
		`m_bucket{le="2.5e-06"} 1`,
		`m_bucket{le="0.0025"} 1`,
		`m_bucket{le="0.005"} 2`,
		`m_bucket{le="10"} 2`,
		`m_bucket{le="+Inf"} 3`,
		`m_count 3`,
	} {
		if !strings.Contains(out, line+"\n") {
			t.Fatalf("exposition missing %q:\n%s", line, out)
		}
	}
	// An observation exactly on a boundary lands in that bucket.
	var hb Histogram
	hb.Observe(time.Millisecond)
	var bb strings.Builder
	hb.write(&bb, "m", "")
	if !strings.Contains(bb.String(), `m_bucket{le="0.001"} 1`+"\n") {
		t.Fatalf("boundary observation not in its bucket:\n%s", bb.String())
	}
}

func TestHistogramVecSortedExposition(t *testing.T) {
	v := NewHistogramVec("phaged_test_seconds", "stage")
	v.Observe("zeta", time.Millisecond)
	v.Observe("alpha", time.Millisecond)
	var b strings.Builder
	v.Write(&b)
	out := b.String()
	ia := strings.Index(out, `stage="alpha"`)
	iz := strings.Index(out, `stage="zeta"`)
	if ia < 0 || iz < 0 || ia > iz {
		t.Fatalf("label values not sorted in exposition:\n%s", out)
	}
	if !strings.Contains(out, `phaged_test_seconds_count{stage="alpha"} 1`+"\n") {
		t.Fatalf("missing labeled count:\n%s", out)
	}
}

func TestSinkObserveTrace(t *testing.T) {
	s := NewSink()
	tr := buildSample(time.Millisecond, 2*time.Millisecond)
	tr.Child("Rescan").SetDuration(time.Millisecond)
	s.ObserveTrace(tr)
	// Transfer and Compile are not stage names; Select, Discover,
	// Rescan are.
	if got := s.Stage.With(StageSelect).Count(); got != 1 {
		t.Fatalf("Select count = %d, want 1", got)
	}
	if got := s.Stage.With(StageDiscover).Count(); got != 1 {
		t.Fatalf("Discover count = %d, want 1", got)
	}
	if got := s.Stage.With(StageRescan).Count(); got != 1 {
		t.Fatalf("Rescan count = %d, want 1", got)
	}
	var b strings.Builder
	s.WriteMetrics(&b)
	if !strings.Contains(b.String(), `phaged_stage_duration_seconds_bucket{stage="Select",le="+Inf"} 1`) {
		t.Fatalf("sink exposition missing stage histogram:\n%s", b.String())
	}
}

func TestRenderShowsSelfAndTotal(t *testing.T) {
	var b strings.Builder
	buildSample(time.Millisecond, 2*time.Millisecond).Render(&b)
	out := b.String()
	if !strings.Contains(out, "Transfer") || !strings.Contains(out, "total") || !strings.Contains(out, "self") {
		t.Fatalf("render output missing expected parts:\n%s", out)
	}
	if !strings.Contains(out, "└─ Discover") {
		t.Fatalf("render output missing tree connectors:\n%s", out)
	}
}

func TestSummarizeStages(t *testing.T) {
	t1 := New("Transfer")
	t1.Child("Select").SetDuration(2 * time.Millisecond)
	t1.Child("Select").SetDuration(4 * time.Millisecond)
	t1.Child("Rescan").SetDuration(time.Millisecond)
	rows := SummarizeStages([]*Span{t1}, Stages)
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2 (Select, Rescan)", len(rows))
	}
	if rows[0].Stage != StageSelect || rows[0].Count != 2 || rows[0].Median != 4*time.Millisecond {
		t.Fatalf("select row = %+v", rows[0])
	}
	if rows[1].Stage != StageRescan || rows[1].Count != 1 {
		t.Fatalf("rescan row = %+v", rows[1])
	}
	table := FormatStageTable(rows)
	if !strings.Contains(table, "Select") || !strings.Contains(table, "median") {
		t.Fatalf("table:\n%s", table)
	}
}
