package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultBuckets are the fixed histogram boundaries, in seconds, used
// for every latency histogram in the system. They are log-spaced from
// 1µs to 10s. The boundaries are frozen: exposition stability (and the
// BENCH_pipeline trajectory) depends on them never changing, so treat
// any edit as a breaking change to the /metrics contract.
var DefaultBuckets = []float64{
	1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5,
	1, 2.5, 5, 10,
}

// bucketLabels are the precomputed `le` label values for
// DefaultBuckets. strconv.FormatFloat with 'g' and precision -1 is the
// shortest exact rendering, which keeps the text exposition stable
// across Go versions and platforms.
var bucketLabels = func() []string {
	out := make([]string, len(DefaultBuckets))
	for i, b := range DefaultBuckets {
		out[i] = strconv.FormatFloat(b, 'g', -1, 64)
	}
	return out
}()

const numBuckets = 22 // len(DefaultBuckets); checked by TestBucketLabelsGolden

// Histogram is a lock-free latency histogram over DefaultBuckets.
type Histogram struct {
	counts [numBuckets + 1]atomic.Uint64 // +1 for +Inf
	sumNs  atomic.Int64
	total  atomic.Uint64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	secs := d.Seconds()
	idx := sort.SearchFloat64s(DefaultBuckets, secs)
	h.counts[idx].Add(1)
	h.sumNs.Add(d.Nanoseconds())
	h.total.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum returns the sum of all observed durations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNs.Load()) }

// write emits the histogram in Prometheus text exposition format.
// labels is either empty or a pre-rendered `key="value"` fragment.
func (h *Histogram) write(w io.Writer, name, labels string) {
	cum := uint64(0)
	for i := range DefaultBuckets {
		cum += h.counts[i].Load()
		if labels == "" {
			fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", name, bucketLabels[i], cum)
		} else {
			fmt.Fprintf(w, "%s_bucket{%s,le=\"%s\"} %d\n", name, labels, bucketLabels[i], cum)
		}
	}
	cum += h.counts[len(DefaultBuckets)].Load()
	if labels == "" {
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
		fmt.Fprintf(w, "%s_sum %g\n", name, float64(h.sumNs.Load())/1e9)
		fmt.Fprintf(w, "%s_count %d\n", name, cum)
	} else {
		fmt.Fprintf(w, "%s_bucket{%s,le=\"+Inf\"} %d\n", name, labels, cum)
		fmt.Fprintf(w, "%s_sum{%s} %g\n", name, labels, float64(h.sumNs.Load())/1e9)
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, cum)
	}
}

// HistogramVec is a set of Histograms partitioned by one label.
type HistogramVec struct {
	name  string
	label string

	mu   sync.Mutex
	vals map[string]*Histogram
}

// NewHistogramVec returns a histogram family exported under the given
// metric name, partitioned by the given label key.
func NewHistogramVec(name, label string) *HistogramVec {
	return &HistogramVec{name: name, label: label, vals: make(map[string]*Histogram)}
}

// With returns the histogram for one label value, creating it on first
// use.
func (v *HistogramVec) With(value string) *Histogram {
	v.mu.Lock()
	defer v.mu.Unlock()
	h := v.vals[value]
	if h == nil {
		h = &Histogram{}
		v.vals[value] = h
	}
	return h
}

// Observe records one duration under the given label value.
func (v *HistogramVec) Observe(value string, d time.Duration) {
	v.With(value).Observe(d)
}

// Write emits every member histogram in label-value order.
func (v *HistogramVec) Write(w io.Writer) {
	v.mu.Lock()
	keys := make([]string, 0, len(v.vals))
	for k := range v.vals {
		keys = append(keys, k)
	}
	hs := make([]*Histogram, 0, len(keys))
	sort.Strings(keys)
	for _, k := range keys {
		hs = append(hs, v.vals[k])
	}
	v.mu.Unlock()
	for i, k := range keys {
		hs[i].write(w, v.name, fmt.Sprintf("%s=%q", v.label, k))
	}
}
