package telemetry

import (
	"io"
	"time"
)

// Canonical pipeline stage names. These are the span names produced by
// the pipeline engine and the `stage` label values on
// phaged_stage_duration_seconds.
const (
	StageSelect        = "Select"
	StageDiscover      = "Discover"
	StageAnalyzePoints = "AnalyzePoints"
	StageTranslate     = "Translate"
	StageInsert        = "Insert"
	StageValidate      = "Validate"
	StageRescan        = "Rescan"
)

// Stages lists the seven pipeline stages in execution order.
var Stages = []string{
	StageSelect,
	StageDiscover,
	StageAnalyzePoints,
	StageTranslate,
	StageInsert,
	StageValidate,
	StageRescan,
}

var stageSet = func() map[string]bool {
	m := make(map[string]bool, len(Stages))
	for _, s := range Stages {
		m[s] = true
	}
	return m
}()

// Sink aggregates spans and solver query timings into the latency
// histograms exported on /metrics. A single Sink is shared by every
// engine shard in a phaged process; all methods are safe for
// concurrent use. A nil *Sink is a valid no-op sink.
type Sink struct {
	// Stage holds per-pipeline-stage latency, exported as
	// phaged_stage_duration_seconds{stage=...}.
	Stage *HistogramVec
	// Solver holds per-query-class solver latency, exported as
	// phaged_solver_query_duration_seconds{class=...}.
	Solver *HistogramVec
}

// NewSink returns an empty sink.
func NewSink() *Sink {
	return &Sink{
		Stage:  NewHistogramVec("phaged_stage_duration_seconds", "stage"),
		Solver: NewHistogramVec("phaged_solver_query_duration_seconds", "class"),
	}
}

// ObserveTrace folds one finished span tree into the stage histograms.
// Every span named after a pipeline stage contributes one observation,
// so because the span-tree *shape* is deterministic for a given
// transfer, histogram counts are deterministic too (only bucket
// placement varies with actual timing).
func (s *Sink) ObserveTrace(root *Span) {
	if s == nil || root == nil {
		return
	}
	root.Walk(func(sp *Span) {
		if stageSet[sp.Name] {
			s.Stage.Observe(sp.Name, sp.Duration())
		}
	})
}

// ObserveSolver records one solver query of the given class
// (e.g. "equiv.memo", "sat.solve").
func (s *Sink) ObserveSolver(class string, d time.Duration) {
	if s == nil {
		return
	}
	s.Solver.Observe(class, d)
}

// WriteMetrics emits all histogram families in Prometheus text
// exposition format.
func (s *Sink) WriteMetrics(w io.Writer) {
	if s == nil {
		return
	}
	s.Stage.Write(w)
	s.Solver.Write(w)
}
