// Package telemetry is the observability layer for the transfer
// pipeline: span trees that describe where a transfer spent its time,
// and fixed-boundary latency histograms that aggregate those spans for
// /metrics exposition.
//
// The repo's core invariant is that canonical outputs (reports, patch
// artifacts) are byte-identical across scheduling, caching, and
// network boundaries. Telemetry therefore separates every span into
// two halves:
//
//   - Fields: structural attributes that are a pure function of the
//     inputs (stage names, donor identity, candidate counts, verdict
//     strings). Two runs of the same transfer produce identical
//     fields.
//   - Metrics: volatile attributes (durations, cache hits, solver
//     stats deltas) that vary run to run.
//
// Span.Structure renders only the structural half, so tests can pin
// "identical span trees modulo timing" with a string comparison.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Attr is one key/value pair attached to a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one node of a trace tree. DurationNs covers the span and all
// of its children; self time is derived as duration minus the sum of
// child durations.
type Span struct {
	Name       string  `json:"name"`
	Fields     []Attr  `json:"fields,omitempty"`
	Metrics    []Attr  `json:"metrics,omitempty"`
	DurationNs int64   `json:"duration_ns"`
	Children   []*Span `json:"children,omitempty"`
}

// New returns a root span with the given name.
func New(name string) *Span { return &Span{Name: name} }

// Field appends a structural attribute. Structural attributes must be
// a pure function of the transfer inputs; anything timing- or
// scheduling-dependent belongs in Metric.
func (s *Span) Field(key, value string) *Span {
	if s == nil {
		return s
	}
	s.Fields = append(s.Fields, Attr{Key: key, Value: value})
	return s
}

// Fieldf is Field with fmt.Sprintf formatting of the value.
func (s *Span) Fieldf(key, format string, args ...any) *Span {
	if s == nil {
		return s
	}
	return s.Field(key, fmt.Sprintf(format, args...))
}

// Metric appends a volatile attribute (durations, cache deltas, solver
// stats). Metrics are excluded from Structure.
func (s *Span) Metric(key, value string) *Span {
	if s == nil {
		return s
	}
	s.Metrics = append(s.Metrics, Attr{Key: key, Value: value})
	return s
}

// Metricf is Metric with fmt.Sprintf formatting of the value.
func (s *Span) Metricf(key, format string, args ...any) *Span {
	if s == nil {
		return s
	}
	return s.Metric(key, fmt.Sprintf(format, args...))
}

// Child appends and returns a new child span. On a nil receiver it
// returns nil, so call sites can thread an optional span without
// guarding every touch.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{Name: name}
	s.Children = append(s.Children, c)
	return c
}

// Adopt appends an already-built child span (used when children are
// constructed off-tree, e.g. post-hoc in rank order after a parallel
// validation race).
func (s *Span) Adopt(c *Span) {
	if s == nil || c == nil {
		return
	}
	s.Children = append(s.Children, c)
}

// SetDuration records the span's wall-clock duration.
func (s *Span) SetDuration(d time.Duration) {
	if s == nil {
		return
	}
	s.DurationNs = d.Nanoseconds()
}

// Duration returns the span's recorded duration.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.DurationNs)
}

// Self returns the span's duration minus the sum of its children's
// durations, floored at zero.
func (s *Span) Self() time.Duration {
	if s == nil {
		return 0
	}
	self := s.DurationNs
	for _, c := range s.Children {
		self -= c.DurationNs
	}
	if self < 0 {
		self = 0
	}
	return time.Duration(self)
}

// Clone returns a deep copy of the span tree.
func (s *Span) Clone() *Span {
	if s == nil {
		return nil
	}
	out := &Span{Name: s.Name, DurationNs: s.DurationNs}
	if len(s.Fields) > 0 {
		out.Fields = append([]Attr(nil), s.Fields...)
	}
	if len(s.Metrics) > 0 {
		out.Metrics = append([]Attr(nil), s.Metrics...)
	}
	for _, c := range s.Children {
		out.Children = append(out.Children, c.Clone())
	}
	return out
}

// Walk visits the span and every descendant in depth-first order.
func (s *Span) Walk(fn func(*Span)) {
	if s == nil {
		return
	}
	fn(s)
	for _, c := range s.Children {
		c.Walk(fn)
	}
}

// Structure renders the structural skeleton of the tree — names and
// fields only, no metrics or durations — as a stable multi-line
// string. Two runs of the same transfer must produce identical
// Structure output; tests pin this.
func (s *Span) Structure() string {
	var b strings.Builder
	s.structure(&b, 0)
	return b.String()
}

func (s *Span) structure(b *strings.Builder, depth int) {
	if s == nil {
		return
	}
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	b.WriteString(s.Name)
	for _, f := range s.Fields {
		fmt.Fprintf(b, " %s=%s", f.Key, f.Value)
	}
	b.WriteByte('\n')
	for _, c := range s.Children {
		c.structure(b, depth+1)
	}
}

// Marshal renders the span tree as indented JSON, the wire format for
// GET /v1/jobs/{id}/trace and `codephage trace show`.
func (s *Span) Marshal() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Unmarshal parses a span tree previously rendered by Marshal.
func Unmarshal(data []byte) (*Span, error) {
	var s Span
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, err
	}
	return &s, nil
}

// Render pretty-prints the span tree with total and self times plus
// attributes, for `codephage trace show` and figure8 -trace.
func (s *Span) Render(w io.Writer) {
	s.render(w, "", true, true)
}

func (s *Span) render(w io.Writer, prefix string, last, root bool) {
	if s == nil {
		return
	}
	connector, childPrefix := "", ""
	if !root {
		if last {
			connector, childPrefix = prefix+"└─ ", prefix+"   "
		} else {
			connector, childPrefix = prefix+"├─ ", prefix+"│  "
		}
	}
	var attrs []string
	for _, f := range s.Fields {
		attrs = append(attrs, f.Key+"="+f.Value)
	}
	for _, m := range s.Metrics {
		attrs = append(attrs, m.Key+"="+m.Value)
	}
	line := connector + s.Name
	if len(attrs) > 0 {
		line += " [" + strings.Join(attrs, " ") + "]"
	}
	fmt.Fprintf(w, "%s  (total %s, self %s)\n", line,
		formatDuration(s.Duration()), formatDuration(s.Self()))
	for i, c := range s.Children {
		c.render(w, childPrefix, i == len(s.Children)-1, false)
	}
}

func formatDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.3fms", float64(d.Nanoseconds())/1e6)
	case d >= time.Microsecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	default:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	}
}

// StageSummary is one row of a per-stage aggregate over one or more
// traces (figure8 -trace, BENCH_pipeline).
type StageSummary struct {
	Stage  string
	Count  int
	Total  time.Duration
	Median time.Duration
}

// SummarizeStages aggregates the durations of every span named in
// stages across the given traces, returning one row per stage in the
// given order (stages with no observations are skipped).
func SummarizeStages(traces []*Span, stages []string) []StageSummary {
	byStage := make(map[string][]time.Duration)
	for _, tr := range traces {
		tr.Walk(func(s *Span) {
			byStage[s.Name] = append(byStage[s.Name], s.Duration())
		})
	}
	var out []StageSummary
	for _, name := range stages {
		ds := byStage[name]
		if len(ds) == 0 {
			continue
		}
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		var total time.Duration
		for _, d := range ds {
			total += d
		}
		out = append(out, StageSummary{
			Stage:  name,
			Count:  len(ds),
			Total:  total,
			Median: ds[len(ds)/2],
		})
	}
	return out
}

// FormatStageTable renders stage summaries as an aligned text table.
func FormatStageTable(rows []StageSummary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %7s %12s %12s\n", "stage", "count", "total", "median")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %7d %12s %12s\n",
			r.Stage, r.Count, formatDuration(r.Total), formatDuration(r.Median))
	}
	return b.String()
}
