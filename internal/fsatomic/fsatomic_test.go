package fsatomic

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// crash simulates a process dying at the named stage: the hook fires
// once, the write aborts, and the hook disarms itself so the retry
// (the "next boot") runs clean.
func crash(t *testing.T, stage string) {
	t.Helper()
	testHook = func(s string) error {
		if s == stage {
			testHook = nil
			return fmt.Errorf("injected crash before %s", s)
		}
		return nil
	}
	t.Cleanup(func() { testHook = nil })
}

func readAll(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestCrashConsistency is the satellite bar: a writer killed at any
// point between opening the temp file and the final directory sync
// must leave the previously published snapshot complete and intact —
// a loader never sees a partial or mixed file.
func TestCrashConsistency(t *testing.T) {
	old := []byte("snapshot-v1: complete and checksummed\n")
	next := bytes.Repeat([]byte("snapshot-v2: much larger content block\n"), 100)

	for _, stage := range []string{"write", "sync", "rename"} {
		t.Run("crash-before-"+stage, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "state.snap")
			if err := WriteFile(path, old, 0o644); err != nil {
				t.Fatal(err)
			}

			crash(t, stage)
			if err := WriteFile(path, next, 0o644); err == nil {
				t.Fatal("injected crash did not abort the write")
			}

			// The loader's view: the old snapshot, byte-identical.
			if got := readAll(t, path); !bytes.Equal(got, old) {
				t.Fatalf("published file disturbed by crashed writer:\n got %q\nwant %q", got, old)
			}

			// The "next boot" write succeeds and fully replaces it.
			if err := WriteFile(path, next, 0o644); err != nil {
				t.Fatal(err)
			}
			if got := readAll(t, path); !bytes.Equal(got, next) {
				t.Fatalf("retry did not publish the new content")
			}
		})
	}
}

// A crash after the rename (before the directory sync) must leave the
// NEW content published — the rename already happened; the directory
// sync only makes it durable.
func TestCrashAfterRenameKeepsNewContent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.snap")
	if err := WriteFile(path, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	crash(t, "syncdir")
	if err := WriteFile(path, []byte("v2"), 0o644); err == nil {
		t.Fatal("injected crash did not abort the write")
	}
	if got := readAll(t, path); !bytes.Equal(got, []byte("v2")) {
		t.Fatalf("got %q after post-rename crash, want the renamed v2", got)
	}
}

func TestNoTempLitterOnFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.snap")
	for _, stage := range []string{"write", "sync", "rename"} {
		crash(t, stage)
		if err := WriteFile(path, []byte("data"), 0o644); err == nil {
			t.Fatalf("stage %s: injected crash did not abort", stage)
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if strings.Contains(e.Name(), ".tmp-") {
				t.Fatalf("stage %s: temp file %s left behind", stage, e.Name())
			}
		}
	}
}

func TestWriteFileModeAndContent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact.bin")
	data := []byte{0, 1, 2, 0xFF, 0x80}
	if err := WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, path); !bytes.Equal(got, data) {
		t.Fatalf("content mismatch: %v != %v", got, data)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode().Perm() != 0o644 {
		t.Fatalf("mode %v, want 0644 (CreateTemp's 0600 leaked through)", st.Mode().Perm())
	}
	// Overwrite publishes whole.
	if err := WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, path); !bytes.Equal(got, []byte("x")) {
		t.Fatalf("overwrite left %q", got)
	}
}

func TestWriteFileMissingDir(t *testing.T) {
	err := WriteFile(filepath.Join(t.TempDir(), "no-such-dir", "f"), []byte("x"), 0o644)
	if err == nil {
		t.Fatal("write into a missing directory succeeded")
	}
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("unexpected error class: %v", err)
	}
}
