// Package fsatomic is the shared crash-durable file publisher. Every
// persistent artifact in the system — the solver's warm-state memo
// snapshot, the donor corpus index, the patch registry's artifacts —
// is a cache or a content-addressed blob that readers load whole: the
// publish contract is therefore "after WriteFile returns, the path
// holds exactly the new bytes; after a crash at any point, the path
// holds either the complete old content or the complete new content,
// never a mixture and never a truncation".
//
// A bare temp-file + os.Rename gives the no-mixture half but not the
// crash half: without an fsync of the temp file the rename can publish
// a name whose data blocks never reached disk (a power loss then
// yields a zero-length or partially-written "published" file), and
// without an fsync of the parent directory the rename itself can be
// lost, silently reviving the previous content. WriteFile does both
// syncs, in order: file data first, then the directory entry.
package fsatomic

import (
	"fmt"
	"os"
	"path/filepath"
)

// hook names the failure-injection points the crash-consistency tests
// drive. In production builds the hook is nil and costs one nil check.
type hook func(stage string) error

// testHook, when non-nil, runs before the named stage and aborts the
// write when it returns an error — simulating a crash at that point.
// Stages, in execution order: "write", "sync", "rename", "syncdir".
var testHook hook

// WriteFile atomically publishes data at path with the given mode.
// The data is written to a temp file in path's directory, synced to
// disk, renamed over path, and the directory entry is synced too, so
// a crash at any instant leaves path holding either its complete old
// content or the complete new content. The temp file is removed on
// every failure path.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	// One cleanup for every early return: close is harmless after a
	// successful Close, and the Remove is a no-op after the rename.
	defer func() {
		tmp.Close()
		os.Remove(tmpName)
	}()

	if err := fire("write"); err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return err
	}
	// CreateTemp's 0600 would survive the rename and lock other users
	// out of a shared artifact; publish with the caller's mode.
	if err := tmp.Chmod(perm); err != nil {
		return err
	}
	if err := fire("sync"); err != nil {
		return err
	}
	// Data blocks must be durable before the rename can make them
	// reachable: a rename of an unsynced file is the torn-snapshot
	// window this package exists to close.
	if err := tmp.Sync(); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := fire("rename"); err != nil {
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		return err
	}
	if err := fire("syncdir"); err != nil {
		return err
	}
	// The rename is only durable once the directory entry is: without
	// this, a crash can revive the old file after WriteFile returned.
	if err := syncDir(dir); err != nil {
		return fmt.Errorf("fsatomic: syncing %s: %w", dir, err)
	}
	return nil
}

// fire runs the test hook for one stage (no-op in production).
func fire(stage string) error {
	if testHook != nil {
		return testHook(stage)
	}
	return nil
}

// syncDir fsyncs a directory so a completed rename inside it survives
// a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
