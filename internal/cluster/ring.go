// Package cluster turns N phaged processes into one transfer service:
// a consistent-hash ring over the request content key routes every
// job to exactly one owner node, so identical requests dedup across
// the cluster the same way they already dedup within one process.
// Any node accepts any request — non-owned jobs are forwarded to the
// owner and the response bytes relayed verbatim, keeping the
// single-node byte-identical report invariant intact across nodes.
// The corpus index and its fingerprint sidecar replicate as one
// content-addressed artifact that followers pull from the ring and
// hot-swap without restart; draining nodes hand their ring slice and
// queued jobs off to the survivors, and idle nodes may steal from
// deep peer queues.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// defaultVNodes is the virtual-node count per member: enough points
// that each member's share of the key space concentrates near
// 1/len(members), so add/remove moves only ~1/n of the keys.
const defaultVNodes = 64

// ringSpan is the size of the 64-bit hash circle as a float, for
// ownership-fraction arithmetic.
const ringSpan = float64(1<<63) * 2

type ringPoint struct {
	h      uint64
	member string
}

// Ring is an immutable consistent-hash ring: ownership is a pure
// function of (key, member set, vnode count). Rebuilding a ring from
// the same member set always yields the same assignment, so every
// node that agrees on membership agrees on routing with no
// coordination.
type Ring struct {
	points  []ringPoint
	members []string
}

// NewRing builds a ring over the member names (typically advertised
// base URLs). Duplicates are collapsed; order does not matter.
// vnodes <= 0 selects the default.
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	uniq := make([]string, 0, len(members))
	seen := map[string]bool{}
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		uniq = append(uniq, m)
	}
	sort.Strings(uniq)
	r := &Ring{members: uniq}
	for _, m := range uniq {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{h: pointHash(m, i), member: m})
		}
	}
	// Tie-break equal hashes by member name: hash collisions are
	// astronomically unlikely, but determinism must not depend on that.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].h != r.points[j].h {
			return r.points[i].h < r.points[j].h
		}
		return r.points[i].member < r.points[j].member
	})
	return r
}

func pointHash(member string, i int) uint64 {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s\x00vnode\x00%d", member, i)))
	return binary.BigEndian.Uint64(sum[:8])
}

func keyHash(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}

// Owner returns the member owning key ("" on an empty ring): the
// first ring point at or clockwise after the key's hash.
func (r *Ring) Owner(key string) string {
	if r == nil || len(r.points) == 0 {
		return ""
	}
	h := keyHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member
}

// Members returns the member set, sorted.
func (r *Ring) Members() []string {
	if r == nil {
		return nil
	}
	out := make([]string, len(r.members))
	copy(out, r.members)
	return out
}

// Fraction returns member's share of the key space (the summed arc
// lengths of its ring points), in [0, 1]. The shares of all members
// sum to 1.
func (r *Ring) Fraction(member string) float64 {
	if r == nil || len(r.points) == 0 {
		return 0
	}
	if len(r.points) == 1 {
		if r.points[0].member == member {
			return 1
		}
		return 0
	}
	var frac float64
	for i, p := range r.points {
		if p.member != member {
			continue
		}
		prev := len(r.points) - 1
		if i > 0 {
			prev = i - 1
		}
		// Unsigned subtraction wraps, which is exactly the arc length
		// across the zero point.
		arc := p.h - r.points[prev].h
		frac += float64(arc) / ringSpan
	}
	return frac
}
