package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"codephage/internal/server"
)

// forwardedHeader marks a request as already forwarded once. A node
// receiving it never forwards again: when two nodes' membership views
// momentarily disagree about ownership, the second hop serves locally
// instead of ping-ponging. Determinism makes serving anywhere safe —
// the ring exists for dedup and cache locality, not correctness.
const forwardedHeader = "X-Phaged-Forwarded-From"

// Config assembles a cluster node.
type Config struct {
	// Self is this node's advertised base URL, e.g.
	// "http://10.0.0.1:8347". Tests that only learn their URL after
	// binding may leave it empty and call SetTopology once known.
	Self string
	// Peers are the other members' advertised base URLs.
	Peers []string
	// Server configures the wrapped phaged core.
	Server server.Config
	// VNodes is the ring's virtual-node count per member (0 = 64).
	// Every member must use the same value.
	VNodes int
	// ControlTimeout bounds cluster control calls — leave broadcasts,
	// steal negotiation, status and metric fan-in (0 = 10s). Forwarded
	// transfers are NOT control calls: they run as long as the job.
	ControlTimeout time.Duration
	// StealInterval, when positive, polls peers for stealable queued
	// work whenever this node is idle.
	StealInterval time.Duration
	// StealBatch bounds jobs taken per steal (0 = 4).
	StealBatch int
	// Logf receives operational lines (nil = the server config's Logf,
	// else silent).
	Logf func(string, ...any)
}

func (c Config) controlTimeout() time.Duration {
	if c.ControlTimeout > 0 {
		return c.ControlTimeout
	}
	return 10 * time.Second
}

func (c Config) stealBatch() int {
	if c.StealBatch > 0 {
		return c.StealBatch
	}
	return 4
}

// Node is one member of a phaged cluster: a full phaged server plus
// the ring router in front of it.
type Node struct {
	cfg     Config
	srv     *server.Server
	inner   http.Handler
	mux     http.Handler
	control *http.Client // bounded: control-plane calls
	long    *http.Client // unbounded: forwarded transfers (ctx-cancelled)

	mu       sync.Mutex
	self     string
	members  map[string]bool // current view, self included (until drain)
	ring     *Ring
	draining bool
	pending  map[string]*server.Job // jobs handed to thieves, by job ID

	drainOnce sync.Once
	stopAux   chan struct{}
	auxWG     sync.WaitGroup
	auxOnce   sync.Once
	auxStop   sync.Once

	forwards        atomic.Int64
	forwardFailures atomic.Int64
	steals          atomic.Int64
	handoffs        atomic.Int64
	artifactPulls   atomic.Int64
}

// New assembles a node. Call Start (or SetTopology then Start) before
// serving its Handler.
func New(cfg Config) *Node {
	n := &Node{
		cfg:     cfg,
		srv:     server.New(cfg.Server),
		control: &http.Client{Timeout: cfg.controlTimeout()},
		long:    &http.Client{},
		members: map[string]bool{},
		pending: map[string]*server.Job{},
		stopAux: make(chan struct{}),
	}
	n.inner = n.srv.Handler()
	n.srv.SetClusterMetrics(n.clusterStats)

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/transfer", n.handleTransfer)
	mux.HandleFunc("GET /v1/cluster/status", n.handleStatus)
	mux.HandleFunc("GET /v1/cluster/metrics", n.handleClusterMetrics)
	mux.HandleFunc("GET /v1/cluster/artifact", n.handleArtifact)
	mux.HandleFunc("POST /v1/cluster/leave", n.handleLeave)
	mux.HandleFunc("POST /v1/cluster/join", n.handleJoin)
	mux.HandleFunc("POST /v1/cluster/steal", n.handleSteal)
	mux.HandleFunc("POST /v1/cluster/stolen", n.handleStolen)
	mux.Handle("/", n.inner)
	n.mux = mux

	if cfg.Self != "" {
		n.SetTopology(cfg.Self, cfg.Peers)
	}
	return n
}

// Server exposes the wrapped phaged core (tests and the daemon loop
// drive Shutdown and Stats through it).
func (n *Node) Server() *server.Server { return n.srv }

// Handler returns the node's HTTP surface: the full phaged API with
// cluster routing on /v1/transfer plus the /v1/cluster endpoints.
func (n *Node) Handler() http.Handler { return n.mux }

// SetTopology (re)establishes this node's identity and peer view and
// rebuilds the ring. Tests call it after binding their listeners.
func (n *Node) SetTopology(self string, peers []string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.self = self
	n.members = map[string]bool{self: true}
	for _, p := range peers {
		if p != "" && p != self {
			n.members[p] = true
		}
	}
	n.rebuildRingLocked()
}

func (n *Node) rebuildRingLocked() {
	members := make([]string, 0, len(n.members))
	for m := range n.members {
		members = append(members, m)
	}
	n.ring = NewRing(members, n.cfg.VNodes)
}

func (n *Node) selfURL() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.self
}

func (n *Node) peers() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.members))
	for m := range n.members {
		if m != n.self {
			out = append(out, m)
		}
	}
	sort.Strings(out)
	return out
}

func (n *Node) ownerFor(key string) string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ring.Owner(key)
}

func (n *Node) isDraining() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.draining
}

func (n *Node) logf(format string, args ...any) {
	switch {
	case n.cfg.Logf != nil:
		n.cfg.Logf(format, args...)
	case n.cfg.Server.Logf != nil:
		n.cfg.Server.Logf(format, args...)
	}
}

// Start launches the wrapped server's workers and the node's
// background loops (the boot-time artifact pull and, when configured,
// the steal poller).
func (n *Node) Start() {
	n.srv.Start()
	n.auxOnce.Do(func() {
		if len(n.peers()) > 0 {
			n.auxWG.Add(1)
			go func() {
				defer n.auxWG.Done()
				n.pullArtifactAtBoot()
			}()
		}
		if n.cfg.StealInterval > 0 {
			n.auxWG.Add(1)
			go func() {
				defer n.auxWG.Done()
				n.stealLoop()
			}()
		}
	})
}

// StopAux stops the node's background loops (Shutdown and the daemon
// loop call it; safe to call repeatedly).
func (n *Node) StopAux() {
	n.auxStop.Do(func() { close(n.stopAux) })
	n.auxWG.Wait()
}

// Shutdown drains the node: Drain (leave the ring, hand off queued
// work), stop the background loops, then drain the wrapped server's
// running jobs.
func (n *Node) Shutdown(ctx context.Context) error {
	n.Drain(ctx)
	n.StopAux()
	return n.srv.Shutdown(ctx)
}

func (n *Node) clusterStats() server.ClusterStats {
	n.mu.Lock()
	peers := len(n.members)
	draining := n.draining
	n.mu.Unlock()
	return server.ClusterStats{
		Peers:           peers,
		Draining:        draining,
		Forwards:        n.forwards.Load(),
		ForwardFailures: n.forwardFailures.Load(),
		Steals:          n.steals.Load(),
		Handoffs:        n.handoffs.Load(),
		ArtifactPulls:   n.artifactPulls.Load(),
	}
}

func (n *Node) writeError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func (n *Node) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		n.logf("cluster: encoding response: %v", err)
	}
}

// readBounded reads a request body under the shared JSON bound,
// mapping an oversized body to 413 exactly like the inner server.
func readBounded(w http.ResponseWriter, r *http.Request) ([]byte, int, error) {
	r.Body = http.MaxBytesReader(w, r.Body, server.MaxJSONBody)
	body, err := io.ReadAll(r.Body)
	if err == nil {
		return body, 0, nil
	}
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return nil, http.StatusRequestEntityTooLarge, fmt.Errorf("request body exceeds %d bytes", mbe.Limit)
	}
	return nil, http.StatusBadRequest, fmt.Errorf("reading request: %w", err)
}

// handleTransfer is the cluster front door: any node accepts any
// request, computes its content key, and either serves it locally
// (this node owns the key, the ring is empty, or the request already
// hopped once) or forwards it to the ring owner and relays the
// response bytes verbatim.
func (n *Node) handleTransfer(w http.ResponseWriter, r *http.Request) {
	body, code, err := readBounded(w, r)
	if err != nil {
		n.writeError(w, code, err)
		return
	}
	var req server.Request
	if err := json.Unmarshal(body, &req); err != nil {
		n.writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	key := server.ContentKey(&req)
	owner := n.ownerFor(key)
	self := n.selfURL()
	hopped := r.Header.Get(forwardedHeader) != ""
	if owner == "" || owner == self || hopped {
		n.serveLocal(w, r, body)
		return
	}
	n.forward(w, r, owner, body)
}

// serveLocal replays the buffered body into the wrapped server.
func (n *Node) serveLocal(w http.ResponseWriter, r *http.Request, body []byte) {
	r.Body = io.NopCloser(bytes.NewReader(body))
	r.ContentLength = int64(len(body))
	n.inner.ServeHTTP(w, r)
}

// forward relays the request to the owner and copies the response
// back byte for byte — never decode-and-reencode, so forwarded
// responses stay byte-identical to locally-served ones. An
// unreachable owner degrades to local execution: determinism makes
// that safe, it only costs the dedup locality for this key.
func (n *Node) forward(w http.ResponseWriter, r *http.Request, owner string, body []byte) {
	u := owner + r.URL.Path
	if r.URL.RawQuery != "" {
		u += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, u, bytes.NewReader(body))
	if err != nil {
		n.writeError(w, http.StatusInternalServerError, err)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(forwardedHeader, n.selfURL())
	resp, err := n.long.Do(req)
	if err != nil {
		n.forwardFailures.Add(1)
		n.logf("cluster: forward to %s failed: %v (serving locally)", owner, err)
		n.serveLocal(w, r, body)
		return
	}
	defer resp.Body.Close()
	n.forwards.Add(1)
	node := resp.Header.Get(server.NodeHeader)
	if node == "" {
		node = owner
	}
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.Header().Set(server.NodeHeader, node)
	w.WriteHeader(resp.StatusCode)
	copyFlush(w, resp.Body)
}

// copyFlush copies body to w, flushing after every chunk so forwarded
// NDJSON streams deliver events as they happen instead of after the
// job completes.
func copyFlush(w http.ResponseWriter, body io.Reader) {
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32*1024)
	for {
		nr, err := body.Read(buf)
		if nr > 0 {
			if _, werr := w.Write(buf[:nr]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// MemberStatus is one row of the /v1/cluster/status topology view.
type MemberStatus struct {
	Node string `json:"node"`
	Self bool   `json:"self,omitempty"`
	// Fraction is the member's share of the content-key space.
	Fraction float64 `json:"fraction"`
}

// StatusView is the /v1/cluster/status payload: this node's view of
// the ring (membership is static configuration plus observed leaves,
// so views can differ transiently across nodes).
type StatusView struct {
	Self     string `json:"self"`
	Draining bool   `json:"draining"`
	// Queued is this node's accepted-but-not-running job count — the
	// signal thieves use to find deep queues.
	Queued  int            `json:"queued"`
	Members []MemberStatus `json:"members"`
}

func (n *Node) handleStatus(w http.ResponseWriter, _ *http.Request) {
	n.mu.Lock()
	ring := n.ring
	self := n.self
	draining := n.draining
	n.mu.Unlock()
	view := StatusView{Self: self, Draining: draining, Queued: n.srv.Stats().Queued}
	for _, m := range ring.Members() {
		view.Members = append(view.Members, MemberStatus{
			Node:     m,
			Self:     m == self,
			Fraction: ring.Fraction(m),
		})
	}
	n.writeJSON(w, http.StatusOK, view)
}

type memberChange struct {
	Node string `json:"node"`
}

// handleLeave removes a draining member from this node's view; keys
// it owned redistribute to the survivors.
func (n *Node) handleLeave(w http.ResponseWriter, r *http.Request) {
	var ch memberChange
	if code, err := server.DecodeJSONBody(w, r, server.MaxJSONBody, &ch); err != nil {
		n.writeError(w, code, err)
		return
	}
	if ch.Node == "" {
		n.writeError(w, http.StatusBadRequest, fmt.Errorf("leave names no node"))
		return
	}
	n.mu.Lock()
	delete(n.members, ch.Node)
	n.rebuildRingLocked()
	n.mu.Unlock()
	n.logf("cluster: %s left the ring", ch.Node)
	n.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleJoin admits a member into this node's view (a drained node's
// replacement announcing itself).
func (n *Node) handleJoin(w http.ResponseWriter, r *http.Request) {
	var ch memberChange
	if code, err := server.DecodeJSONBody(w, r, server.MaxJSONBody, &ch); err != nil {
		n.writeError(w, code, err)
		return
	}
	if ch.Node == "" {
		n.writeError(w, http.StatusBadRequest, fmt.Errorf("join names no node"))
		return
	}
	n.mu.Lock()
	n.members[ch.Node] = true
	n.rebuildRingLocked()
	n.mu.Unlock()
	n.logf("cluster: %s joined the ring", ch.Node)
	n.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// Drain removes this node from the ring and hands its queued jobs to
// their new owners: peers are told to stop routing here, every queued
// (not yet running) job is forwarded to the member now owning its
// key, and the peer's result completes the local job so clients
// polling this node still get their answer. Running jobs finish
// locally via the server's own Shutdown drain. Idempotent.
func (n *Node) Drain(ctx context.Context) {
	n.drainOnce.Do(func() { n.drain(ctx) })
}

func (n *Node) drain(ctx context.Context) {
	n.mu.Lock()
	n.draining = true
	delete(n.members, n.self)
	n.rebuildRingLocked()
	self := n.self
	n.mu.Unlock()

	peers := n.peers()
	for _, p := range peers {
		if err := n.postControl(ctx, p, "/v1/cluster/leave", memberChange{Node: self}); err != nil {
			n.logf("cluster: telling %s we left: %v", p, err)
		}
	}

	jobs := n.srv.TakeQueued(0)
	if len(jobs) == 0 {
		return
	}
	n.logf("cluster: draining: handing off %d queued job(s)", len(jobs))
	// Hand off concurrently: each forward waits for a full engine run
	// on the new owner, and the jobs are independent.
	sem := make(chan struct{}, 8)
	var wg sync.WaitGroup
	for _, job := range jobs {
		wg.Add(1)
		go func(job *server.Job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			n.handoff(ctx, job)
		}(job)
	}
	wg.Wait()
}

// handoff forwards one taken job to its new ring owner and completes
// the local job with the peer's result. With no peer to take it, the
// job is requeued to finish locally during the server drain.
func (n *Node) handoff(ctx context.Context, job *server.Job) {
	owner := n.ownerFor(job.Key)
	if owner == "" {
		if err := n.srv.Requeue(job); err != nil {
			n.srv.FailRemote(job, fmt.Errorf("drain handoff: no peers and requeue failed: %w", err))
		}
		return
	}
	env, err := n.forwardRequest(ctx, owner, job.Req)
	if err != nil {
		n.forwardFailures.Add(1)
		if rqErr := n.srv.Requeue(job); rqErr != nil {
			n.srv.FailRemote(job, fmt.Errorf("drain handoff to %s: %w", owner, err))
		}
		return
	}
	n.handoffs.Add(1)
	n.completeFromEnvelope(job, env, owner)
}

// rawEnvelope is a peer's transfer response with the report kept as
// raw bytes, so relaying it never re-encodes the deterministic
// payload.
type rawEnvelope struct {
	ID     string          `json:"id"`
	Status server.Status   `json:"status"`
	Error  string          `json:"error,omitempty"`
	Report json.RawMessage `json:"report,omitempty"`
}

// forwardRequest runs req on the peer synchronously (hop-guarded so
// the peer never forwards again) and returns its envelope.
func (n *Node) forwardRequest(ctx context.Context, peer string, req *server.Request) (*rawEnvelope, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+"/v1/transfer", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(forwardedHeader, n.selfURL())
	resp, err := n.long.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		if e.Error != "" {
			return nil, fmt.Errorf("%s: %s (%s)", peer, e.Error, resp.Status)
		}
		return nil, fmt.Errorf("%s: %s", peer, resp.Status)
	}
	var env rawEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		return nil, fmt.Errorf("decoding %s envelope: %w", peer, err)
	}
	return &env, nil
}

// completeFromEnvelope publishes a peer-produced terminal envelope as
// the local job's result.
func (n *Node) completeFromEnvelope(job *server.Job, env *rawEnvelope, peer string) {
	switch {
	case env.Status == server.StatusDone && len(env.Report) > 0:
		var rep server.Report
		if err := json.Unmarshal(env.Report, &rep); err != nil {
			n.srv.FailRemote(job, fmt.Errorf("decoding %s report: %w", peer, err))
			return
		}
		n.srv.FinishRemote(job, &rep, nil)
	case env.Status == server.StatusFailed:
		n.srv.FailRemote(job, errors.New(env.Error))
	default:
		n.srv.FailRemote(job, fmt.Errorf("%s returned non-terminal status %q", peer, env.Status))
	}
}

// postControl POSTs a JSON control message to a peer endpoint under
// the control timeout.
func (n *Node) postControl(ctx context.Context, peer, path string, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := n.control.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("%s%s: %s", peer, path, resp.Status)
	}
	return nil
}

// getControl GETs a peer endpoint under the control timeout and
// decodes the JSON payload into v.
func (n *Node) getControl(ctx context.Context, peer, path string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+path, nil)
	if err != nil {
		return err
	}
	resp, err := n.control.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("%s%s: %s", peer, path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
