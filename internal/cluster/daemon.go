package cluster

import (
	"time"

	"codephage/internal/server"
)

// ListenAndServe runs a cluster node as a daemon: the shared phaged
// serve/drain loop with the node's routing handler in front of the
// server and the cluster drain (ring handoff) spliced into the
// shutdown sequence before the listener stops accepting — peers and
// polling clients keep getting answers while queued work moves.
func ListenAndServe(addr string, n *Node, drain time.Duration, logf func(string, ...any)) error {
	n.Start()
	defer n.StopAux()
	return server.ServeLoop(addr, n.Server(), n.Handler(), drain, logf, n.Drain)
}
