package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"codephage/internal/apps"
	"codephage/internal/pipeline"
	"codephage/internal/scenario"
	"codephage/internal/server"
)

// testCluster is an in-process cluster: each node's Handler on its
// own loopback listener, topologies established after binding.
type testCluster struct {
	nodes []*Node
	urls  []string
}

// startCluster boots count nodes sharing one server config. Aux loops
// (boot artifact pull, steal poller) are NOT started — tests drive
// PullArtifact and StealOnce explicitly to stay deterministic.
func startCluster(t *testing.T, count int, scfg server.Config) *testCluster {
	t.Helper()
	nodes := make([]*Node, count)
	servers := make([]*httptest.Server, count)
	urls := make([]string, count)
	for i := range nodes {
		nodes[i] = New(Config{Server: scfg, ControlTimeout: 30 * time.Second})
		servers[i] = httptest.NewServer(nodes[i].Handler())
		urls[i] = servers[i].URL
	}
	for i, n := range nodes {
		var peers []string
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		n.SetTopology(urls[i], peers)
		n.Server().Start()
	}
	t.Cleanup(func() {
		// Generous: a slow Figure 8 target under the race detector can
		// hold a worker for minutes.
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
		defer cancel()
		for i := range nodes {
			nodes[i].StopAux()
			if err := nodes[i].Server().Shutdown(ctx); err != nil {
				t.Errorf("node %d shutdown: %v", i, err)
			}
			servers[i].Close()
		}
	})
	return &testCluster{nodes: nodes, urls: urls}
}

// clusterEnv keeps the report's raw bytes so tests compare exactly
// what crossed the network, plus the forward header.
type clusterEnv struct {
	ID     string          `json:"id"`
	Status server.Status   `json:"status"`
	Dedup  bool            `json:"dedup"`
	Error  string          `json:"error"`
	Report json.RawMessage `json:"report"`
	Node   string          `json:"-"`
}

// post submits req to base+"/v1/transfer"+query; hop marks the
// request as already forwarded, pinning it to the receiving node.
func post(t *testing.T, base string, req *server.Request, query string, hop bool) *clusterEnv {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, base+"/v1/transfer"+query, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	if hop {
		hreq.Header.Set(forwardedHeader, "test")
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env clusterEnv
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("decoding envelope: %v (status %s)", err, resp.Status)
	}
	env.Node = resp.Header.Get(server.NodeHeader)
	return &env
}

// figure8Requests is one request per catalogued Figure 8 target.
func figure8Requests() []*server.Request {
	var reqs []*server.Request
	for _, tgt := range apps.Targets() {
		reqs = append(reqs, &server.Request{
			Recipient: tgt.Recipient,
			Target:    tgt.ID,
			Donor:     tgt.Donors[0],
		})
	}
	return reqs
}

// fastRequests returns Figure 8 targets whose transfers complete in
// well under a second even with the race detector on. The tests that
// pin queue mechanics (dedup gates, drain handoff, stealing) use
// these so their timing gates never ride on engine speed; the full
// batch (including the slow targets) is covered by
// TestClusterByteIdenticalFigure8.
func fastRequests(t *testing.T) []*server.Request {
	t.Helper()
	fast := map[string]bool{
		"jpc_dec.c@492":         true, // jasper
		"gif2tiff.c@355":        true, // gif2tiff
		"packet-dcp-etsi.c@258": true, // wireshark14
		"xwindow.c@5619":        true, // display
	}
	var reqs []*server.Request
	for _, req := range figure8Requests() {
		if fast[req.Target] {
			reqs = append(reqs, req)
		}
	}
	if len(reqs) != len(fast) {
		t.Fatalf("catalogue lacks fast targets: found %d of %d", len(reqs), len(fast))
	}
	return reqs
}

// singleNodeReports runs reqs against a plain (cluster-free) server
// and returns each report's exact bytes, keyed by content key.
func singleNodeReports(t *testing.T, scfg server.Config, reqs []*server.Request) map[string][]byte {
	t.Helper()
	srv := server.New(scfg)
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("baseline shutdown: %v", err)
		}
	}()
	out := map[string][]byte{}
	for _, req := range reqs {
		env := post(t, ts.URL, req, "", false)
		if env.Status != server.StatusDone {
			t.Fatalf("baseline %s/%s <- %s: %s (%s)", req.Recipient, req.Target, req.Donor, env.Status, env.Error)
		}
		out[server.ContentKey(req)] = env.Report
	}
	return out
}

func totalStat(tc *testCluster, f func(server.Stats) int64) int64 {
	var sum int64
	for _, n := range tc.nodes {
		sum += f(n.Server().Stats())
	}
	return sum
}

// TestClusterByteIdenticalFigure8 pins the cross-node invariant on
// the full Figure 8 batch: every request, submitted through every
// node of a 3-node cluster, returns report bytes identical to a
// single-node daemon's, and forwarded responses name a consistent
// owner in the X-Phaged-Node header.
func TestClusterByteIdenticalFigure8(t *testing.T) {
	reqs := figure8Requests()
	if testing.Short() {
		// The full batch includes targets that run for minutes under
		// the race detector; -short keeps the routing smoke on the
		// fast subset and CI's dedicated cluster step runs the batch.
		reqs = fastRequests(t)
	}
	baseline := singleNodeReports(t, server.Config{}, reqs)
	tc := startCluster(t, 3, server.Config{})

	type result struct {
		req *server.Request
		via int
		env *clusterEnv
	}
	results := make(chan result, len(reqs)*len(tc.nodes))
	var wg sync.WaitGroup
	for _, req := range reqs {
		for i := range tc.nodes {
			wg.Add(1)
			go func(req *server.Request, i int) {
				defer wg.Done()
				results <- result{req, i, post(t, tc.urls[i], req, "", false)}
			}(req, i)
		}
	}
	wg.Wait()
	close(results)

	owners := map[string]map[string]bool{} // key -> set of header nodes
	for res := range results {
		key := server.ContentKey(res.req)
		if res.env.Status != server.StatusDone {
			t.Fatalf("via node %d, %s/%s: %s (%s)", res.via, res.req.Recipient, res.req.Target, res.env.Status, res.env.Error)
		}
		if !bytes.Equal(res.env.Report, baseline[key]) {
			t.Errorf("via node %d, %s/%s: report bytes differ from single-node daemon", res.via, res.req.Recipient, res.req.Target)
		}
		if res.env.Node != "" {
			if owners[key] == nil {
				owners[key] = map[string]bool{}
			}
			owners[key][res.env.Node] = true
		}
	}
	for key, set := range owners {
		if len(set) > 1 {
			t.Errorf("key %s was attributed to multiple owners: %v", key, set)
		}
	}
	var forwards int64
	for _, n := range tc.nodes {
		forwards += n.forwards.Load()
	}
	if forwards == 0 {
		t.Error("no request was ever forwarded: ring routing is not engaged")
	}
	if failures := totalStat(tc, func(s server.Stats) int64 { return s.Failed }); failures != 0 {
		t.Errorf("cluster reported %d failed jobs", failures)
	}
}

// TestClusterCrossNodeDedup pins cluster-wide dedup: the same request
// submitted through two different non-owner nodes while in flight
// must produce exactly one engine run — the ring maps both onto the
// owner's dedup entry.
func TestClusterCrossNodeDedup(t *testing.T) {
	req := fastRequests(t)[0]
	key := server.ContentKey(req)

	entered := make(chan struct{})
	release := make(chan struct{})
	var releaseOnce sync.Once
	var gateHit atomic.Int64
	scfg := server.Config{
		BeforeRun: func(job *server.Job) {
			if job.Key != key {
				return
			}
			if gateHit.Add(1) == 1 {
				close(entered)
			}
			<-release
		},
	}
	tc := startCluster(t, 3, scfg)
	t.Cleanup(func() { releaseOnce.Do(func() { close(release) }) })

	owner := tc.nodes[0].ownerFor(key)
	var senders []int
	for i, u := range tc.urls {
		if u != owner {
			senders = append(senders, i)
		}
	}
	if len(senders) != 2 {
		t.Fatalf("expected 2 non-owner nodes, got %d (owner %s)", len(senders), owner)
	}

	envs := make([]*clusterEnv, 2)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		envs[0] = post(t, tc.urls[senders[0]], req, "", false)
	}()
	select {
	case <-entered:
	case <-time.After(30 * time.Second):
		t.Fatal("first submission never reached the engine")
	}
	// The job is now provably in flight on the owner; the second
	// submission must join it instead of running again.
	wg.Add(1)
	go func() {
		defer wg.Done()
		envs[1] = post(t, tc.urls[senders[1]], req, "", false)
	}()
	waitForDedup := time.After(30 * time.Second)
	for tc.nodes[0].Server().Stats().DedupHits+tc.nodes[1].Server().Stats().DedupHits+tc.nodes[2].Server().Stats().DedupHits == 0 {
		select {
		case <-waitForDedup:
			t.Fatal("second submission never hit the dedup index")
		case <-time.After(10 * time.Millisecond):
		}
	}
	releaseOnce.Do(func() { close(release) })
	wg.Wait()

	for i, env := range envs {
		if env.Status != server.StatusDone {
			t.Fatalf("submission %d: %s (%s)", i, env.Status, env.Error)
		}
	}
	if !bytes.Equal(envs[0].Report, envs[1].Report) {
		t.Error("deduped submissions returned different report bytes")
	}
	if envs[0].ID != envs[1].ID {
		t.Errorf("deduped submissions got different job IDs: %s vs %s", envs[0].ID, envs[1].ID)
	}
	if runs := gateHit.Load(); runs != 1 {
		t.Errorf("engine ran %d times for one logical request, want 1", runs)
	}
	if runs := totalStat(tc, func(s server.Stats) int64 { return s.EngineRuns }); runs != 1 {
		t.Errorf("cluster-wide engine runs = %d, want 1", runs)
	}
}

// TestClusterDrainHandoff drains a node holding queued jobs: the
// queued work must be forwarded to the surviving owners and complete
// on the draining node with byte-identical reports, while the
// survivors drop the drained node from their rings.
func TestClusterDrainHandoff(t *testing.T) {
	reqs := fastRequests(t)
	blocker, queued := reqs[3], reqs[0:3]
	blockKey := server.ContentKey(blocker)
	baseline := singleNodeReports(t, server.Config{}, queued)

	entered := make(chan struct{})
	release := make(chan struct{})
	var releaseOnce sync.Once
	var enteredOnce sync.Once
	scfg := server.Config{
		Shards:          1,
		WorkersPerShard: 1,
		QueueDepth:      16,
		BeforeRun: func(job *server.Job) {
			if job.Key != blockKey {
				return
			}
			enteredOnce.Do(func() { close(entered) })
			<-release
		},
	}
	tc := startCluster(t, 3, scfg)
	t.Cleanup(func() { releaseOnce.Do(func() { close(release) }) })
	victim := tc.nodes[2]

	// Pin the blocker onto the victim's only worker, then stack queued
	// jobs behind it (hop header: serve locally, never route away).
	post(t, tc.urls[2], blocker, "?async=1", true)
	select {
	case <-entered:
	case <-time.After(30 * time.Second):
		t.Fatal("blocker never started running on the victim")
	}
	ids := make([]string, len(queued))
	for i, req := range queued {
		env := post(t, tc.urls[2], req, "?async=1", true)
		ids[i] = env.ID
	}
	if q := victim.Server().Stats().Queued; q != len(queued) {
		t.Fatalf("victim queue depth = %d, want %d", q, len(queued))
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	victim.Drain(ctx)

	if got := victim.handoffs.Load(); got != int64(len(queued)) {
		t.Errorf("handoffs = %d, want %d", got, len(queued))
	}
	// The handed-off jobs are complete on the victim — clients polling
	// it still get their (byte-identical) answers.
	for i, id := range ids {
		resp, err := http.Get(tc.urls[2] + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var env clusterEnv
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if env.Status != server.StatusDone {
			t.Fatalf("handed-off job %s: %s (%s)", id, env.Status, env.Error)
		}
		if !bytes.Equal(env.Report, baseline[server.ContentKey(queued[i])]) {
			t.Errorf("handed-off job %s: report bytes differ from single-node daemon", id)
		}
	}
	// Survivors dropped the victim from their rings.
	for i := 0; i < 2; i++ {
		var view StatusView
		if err := tc.nodes[i].getControl(ctx, tc.urls[i], "/v1/cluster/status", &view); err != nil {
			t.Fatal(err)
		}
		for _, m := range view.Members {
			if m.Node == tc.urls[2] {
				t.Errorf("node %d still lists the drained node in its ring", i)
			}
		}
	}
	// Release the blocker so the victim's running job can finish and
	// shutdown drains cleanly.
	releaseOnce.Do(func() { close(release) })
}

// TestClusterSteal exercises the steal protocol: an idle thief takes
// queued jobs from the deepest peer, runs them locally, and posts the
// results back, completing the victim's jobs byte-identically.
func TestClusterSteal(t *testing.T) {
	reqs := fastRequests(t)
	blocker, queued := reqs[3], reqs[0:2]
	blockKey := server.ContentKey(blocker)
	baseline := singleNodeReports(t, server.Config{}, queued)

	entered := make(chan struct{})
	release := make(chan struct{})
	var releaseOnce, enteredOnce sync.Once
	scfg := server.Config{
		Shards:          1,
		WorkersPerShard: 1,
		QueueDepth:      16,
		BeforeRun: func(job *server.Job) {
			if job.Key != blockKey {
				return
			}
			enteredOnce.Do(func() { close(entered) })
			<-release
		},
	}
	tc := startCluster(t, 3, scfg)
	t.Cleanup(func() { releaseOnce.Do(func() { close(release) }) })
	victim, thief := tc.nodes[1], tc.nodes[0]

	post(t, tc.urls[1], blocker, "?async=1", true)
	select {
	case <-entered:
	case <-time.After(30 * time.Second):
		t.Fatal("blocker never started running on the victim")
	}
	ids := make([]string, len(queued))
	for i, req := range queued {
		env := post(t, tc.urls[1], req, "?async=1", true)
		ids[i] = env.ID
	}
	if q := victim.Server().Stats().Queued; q != len(queued) {
		t.Fatalf("victim queue depth = %d, want %d", q, len(queued))
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	stolen, err := thief.StealOnce(ctx)
	if err != nil {
		t.Fatalf("StealOnce: %v", err)
	}
	if stolen != len(queued) {
		t.Fatalf("stole %d jobs, want %d", stolen, len(queued))
	}
	if got := thief.steals.Load(); got != int64(len(queued)) {
		t.Errorf("thief steals counter = %d, want %d", got, len(queued))
	}
	for i, id := range ids {
		resp, err := http.Get(tc.urls[1] + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var env clusterEnv
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if env.Status != server.StatusDone {
			t.Fatalf("stolen job %s: %s (%s)", id, env.Status, env.Error)
		}
		if !bytes.Equal(env.Report, baseline[server.ContentKey(queued[i])]) {
			t.Errorf("stolen job %s: report bytes differ from single-node daemon", id)
		}
	}
	releaseOnce.Do(func() { close(release) })
}

// TestClusterArtifactReplication pins corpus replication: a follower
// pulls the leader's content-addressed bundle, verifies the digest,
// hot-swaps it, and afterwards serves the identical digest itself.
func TestClusterArtifactReplication(t *testing.T) {
	tc := startCluster(t, 3, server.Config{})

	leaderURL := tc.nodes[0].ownerFor(artifactKey)
	var follower *Node
	var followerURL string
	for i, u := range tc.urls {
		if u != leaderURL {
			follower, followerURL = tc.nodes[i], u
			break
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	digest, err := follower.PullArtifact(ctx)
	if err != nil {
		t.Fatalf("PullArtifact: %v", err)
	}
	if digest == "" {
		t.Fatal("PullArtifact returned an empty digest")
	}
	if got := follower.artifactPulls.Load(); got != 1 {
		t.Errorf("artifact pulls = %d, want 1", got)
	}

	fetch := func(base string) artifactBundle {
		t.Helper()
		var b artifactBundle
		resp, err := http.Get(base + "/v1/cluster/artifact")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(&b); err != nil {
			t.Fatal(err)
		}
		return b
	}
	leaderBundle := fetch(leaderURL)
	if leaderBundle.Digest != digest {
		t.Errorf("leader digest %s, follower installed %s", leaderBundle.Digest, digest)
	}
	followerBundle := fetch(followerURL)
	if followerBundle.Digest != digest {
		t.Errorf("follower serves digest %s after installing %s", followerBundle.Digest, digest)
	}
	if got := bundleDigest(leaderBundle.Index, leaderBundle.Fingerprints); got != leaderBundle.Digest {
		t.Errorf("leader bundle digest %s does not cover its payload (%s)", leaderBundle.Digest, got)
	}
}

// TestClusterStatusAndMetrics covers the topology view and the
// metric fan-in: fractions sum to one, every member reports up, and
// the aggregated exposition carries the cluster families.
func TestClusterStatusAndMetrics(t *testing.T) {
	tc := startCluster(t, 3, server.Config{})
	req := fastRequests(t)[0]
	env := post(t, tc.urls[0], req, "", false)
	if env.Status != server.StatusDone {
		t.Fatalf("transfer: %s (%s)", env.Status, env.Error)
	}

	var view StatusView
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := tc.nodes[0].getControl(ctx, tc.urls[0], "/v1/cluster/status", &view); err != nil {
		t.Fatal(err)
	}
	if view.Self != tc.urls[0] || view.Draining {
		t.Errorf("status self=%q draining=%v", view.Self, view.Draining)
	}
	if len(view.Members) != 3 {
		t.Fatalf("status members = %d, want 3", len(view.Members))
	}
	var sum float64
	selfRows := 0
	for _, m := range view.Members {
		sum += m.Fraction
		if m.Self {
			selfRows++
			if m.Node != tc.urls[0] {
				t.Errorf("self row names %q", m.Node)
			}
		}
	}
	if selfRows != 1 {
		t.Errorf("status has %d self rows, want 1", selfRows)
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("member fractions sum to %f, want 1", sum)
	}

	resp, err := http.Get(tc.urls[1] + "/v1/cluster/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, u := range tc.urls {
		row := fmt.Sprintf("phaged_cluster_node_up{node=%q} 1", u)
		if !strings.Contains(text, row) {
			t.Errorf("aggregated metrics lack %s", row)
		}
	}
	for _, fam := range []string{
		"phaged_cluster_forwards_total", "phaged_cluster_peers",
		"phaged_engine_runs_total", "phaged_jobs_completed_total",
	} {
		if !strings.Contains(text, fam) {
			t.Errorf("aggregated metrics lack family %s", fam)
		}
	}
}

// TestClusterScenarioSuite runs the fixed-seed conformance suite
// through a 3-node cluster — pair i submitted via node i%3, auto donor
// selection against a shared suite-scoped corpus — and requires every
// report byte-identical to a single-node daemon's, with one node
// draining while the suite is still in flight.
func TestClusterScenarioSuite(t *testing.T) {
	seed, count := int64(424242), 100
	if testing.Short() {
		count = 12
	}
	pairs := make([]*scenario.Pair, count)
	var registered []*apps.App
	var targets []*apps.Target
	for i := range pairs {
		p, err := scenario.GeneratePair(seed + int64(i))
		if err != nil {
			t.Fatalf("generating pair %d: %v", i, err)
		}
		pairs[i] = p
		registered = append(registered, p.Recipient, p.Donor, p.Naive)
		targets = append(targets, p.Target)
	}
	if err := apps.Register(registered...); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, a := range registered {
		names[a.Name] = true
	}
	t.Cleanup(func() { apps.Unregister(func(name string) bool { return names[name] }) })
	if err := apps.RegisterTargets(targets...); err != nil {
		t.Fatal(err)
	}

	donors, loader := scenario.SuiteDonors(pairs)
	scfg := server.Config{CorpusDonors: donors, CorpusLoader: loader}
	reqs := make([]*server.Request, count)
	for i, p := range pairs {
		reqs[i] = &server.Request{
			Recipient: p.Recipient.Name,
			Target:    p.Target.ID,
			Donor:     pipeline.AutoDonor,
		}
	}
	baseline := singleNodeReports(t, scfg, reqs)
	tc := startCluster(t, 3, scfg)

	// Drain node 2 once a third of the suite has completed; the rest of
	// the suite keeps flowing — including submissions addressed to the
	// draining node, which must forward them to the survivors.
	var done atomic.Int64
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for done.Load() < int64(count/3) {
			time.Sleep(5 * time.Millisecond)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
		defer cancel()
		tc.nodes[2].Drain(ctx)
	}()

	envs := make([]*clusterEnv, count)
	sem := make(chan struct{}, 8)
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			envs[i] = post(t, tc.urls[i%3], reqs[i], "", false)
			done.Add(1)
		}(i)
	}
	wg.Wait()
	<-drained

	for i, env := range envs {
		if env.Status != server.StatusDone {
			t.Fatalf("pair %d (%s via node %d): %s (%s)", i, reqs[i].Target, i%3, env.Status, env.Error)
		}
		if !bytes.Equal(env.Report, baseline[server.ContentKey(reqs[i])]) {
			t.Errorf("pair %d (%s via node %d): report bytes differ from single-node daemon", i, reqs[i].Target, i%3)
		}
	}
	// The drained node left the survivors' rings mid-run, yet nothing
	// was lost or re-answered differently.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	for i := 0; i < 2; i++ {
		var view StatusView
		if err := tc.nodes[i].getControl(ctx, tc.urls[i], "/v1/cluster/status", &view); err != nil {
			t.Fatal(err)
		}
		for _, m := range view.Members {
			if m.Node == tc.urls[2] {
				t.Errorf("node %d still lists the drained node in its ring", i)
			}
		}
	}
	if failures := totalStat(tc, func(s server.Stats) int64 { return s.Failed }); failures != 0 {
		t.Errorf("cluster reported %d failed jobs", failures)
	}
}

// TestClusterBodyLimits pins the bound on the cluster front door and
// control endpoints: oversize is 413, malformed is 400.
func TestClusterBodyLimits(t *testing.T) {
	tc := startCluster(t, 1, server.Config{})
	big := `{"recipient":"` + strings.Repeat("a", server.MaxJSONBody) + `"}`
	cases := []struct {
		name, path, body string
		want             int
	}{
		{"transfer oversize", "/v1/transfer", big, http.StatusRequestEntityTooLarge},
		{"transfer malformed", "/v1/transfer", "{nope", http.StatusBadRequest},
		{"steal oversize", "/v1/cluster/steal", big, http.StatusRequestEntityTooLarge},
		{"leave malformed", "/v1/cluster/leave", "{nope", http.StatusBadRequest},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, err := http.Post(tc.urls[0]+c.path, "application/json", strings.NewReader(c.body))
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != c.want {
				t.Fatalf("POST %s: status %d, want %d", c.path, resp.StatusCode, c.want)
			}
		})
	}
}
