package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"codephage/internal/server"
)

// Work stealing: an idle node polls peer queue depths and takes
// queued (not yet running) jobs from the deepest one. The victim
// keeps the job entries — its clients keep polling it — and the thief
// posts each result back, which completes the victim's job exactly
// like a local run would. Determinism makes the migration invisible:
// the report bytes are identical wherever the job runs.

type stealRequest struct {
	// Thief is the stealing node's advertised URL (logging only).
	Thief string `json:"thief"`
	// Max bounds the jobs handed over.
	Max int `json:"max"`
}

type stolenJob struct {
	ID      string          `json:"id"`
	Request *server.Request `json:"request"`
}

type stealResponse struct {
	Jobs []stolenJob `json:"jobs"`
}

// stolenResult is the thief's report-back for one stolen job.
type stolenResult struct {
	ID     string          `json:"id"`
	Status server.Status   `json:"status"`
	Error  string          `json:"error,omitempty"`
	Report json.RawMessage `json:"report,omitempty"`
}

// handleSteal hands queued jobs to a thief. A draining node refuses:
// it is already handing its queue off.
func (n *Node) handleSteal(w http.ResponseWriter, r *http.Request) {
	var req stealRequest
	if code, err := server.DecodeJSONBody(w, r, server.MaxJSONBody, &req); err != nil {
		n.writeError(w, code, err)
		return
	}
	if req.Max <= 0 {
		req.Max = n.cfg.stealBatch()
	}
	if n.isDraining() {
		n.writeJSON(w, http.StatusOK, stealResponse{})
		return
	}
	jobs := n.srv.TakeQueued(req.Max)
	resp := stealResponse{}
	n.mu.Lock()
	for _, job := range jobs {
		n.pending[job.ID] = job
		resp.Jobs = append(resp.Jobs, stolenJob{ID: job.ID, Request: job.Req})
	}
	n.mu.Unlock()
	if len(jobs) > 0 {
		n.logf("cluster: %s stole %d queued job(s)", req.Thief, len(jobs))
	}
	n.writeJSON(w, http.StatusOK, resp)
}

// handleStolen accepts a thief's result for a previously stolen job
// and completes the local job with it.
func (n *Node) handleStolen(w http.ResponseWriter, r *http.Request) {
	var res stolenResult
	if code, err := server.DecodeJSONBody(w, r, server.MaxJSONBody, &res); err != nil {
		n.writeError(w, code, err)
		return
	}
	n.mu.Lock()
	job, ok := n.pending[res.ID]
	delete(n.pending, res.ID)
	n.mu.Unlock()
	if !ok {
		n.writeError(w, http.StatusNotFound, fmt.Errorf("no pending stolen job %q", res.ID))
		return
	}
	n.completeFromEnvelope(job, &rawEnvelope{
		ID: res.ID, Status: res.Status, Error: res.Error, Report: res.Report,
	}, r.Header.Get(forwardedHeader))
	n.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// stealLoop polls for stealable work whenever this node is idle.
func (n *Node) stealLoop() {
	t := time.NewTicker(n.cfg.StealInterval)
	defer t.Stop()
	for {
		select {
		case <-n.stopAux:
			return
		case <-t.C:
			if n.isDraining() || n.srv.Stats().Queued > 0 {
				continue
			}
			ctx, cancel := context.WithTimeout(context.Background(), n.cfg.controlTimeout())
			_, err := n.StealOnce(ctx)
			cancel()
			if err != nil {
				n.logf("cluster: steal: %v", err)
			}
		}
	}
}

// StealOnce asks the peer with the deepest queue for up to StealBatch
// queued jobs, runs them locally, and posts each result back to the
// victim. Returns the number of jobs stolen.
func (n *Node) StealOnce(ctx context.Context) (int, error) {
	victim, depth := "", 0
	for _, p := range n.peers() {
		var view StatusView
		if err := n.getControl(ctx, p, "/v1/cluster/status", &view); err != nil {
			continue // an unreachable peer is not an error; steal elsewhere
		}
		if !view.Draining && view.Queued > depth {
			victim, depth = p, view.Queued
		}
	}
	if victim == "" {
		return 0, nil
	}
	var resp stealResponse
	if err := n.postControlDecode(ctx, victim, "/v1/cluster/steal",
		stealRequest{Thief: n.selfURL(), Max: n.cfg.stealBatch()}, &resp); err != nil {
		return 0, err
	}
	for _, sj := range resp.Jobs {
		n.runStolen(victim, sj)
	}
	return len(resp.Jobs), nil
}

// runStolen executes one stolen job locally and posts the result back
// to the victim. The report-back rides a fresh context: the victim is
// waiting on it even if the steal negotiation's context expired.
func (n *Node) runStolen(victim string, sj stolenJob) {
	res := stolenResult{ID: sj.ID}
	job, _, err := n.srv.Submit(sj.Request)
	if err != nil {
		res.Status = server.StatusFailed
		res.Error = err.Error()
	} else {
		<-job.Done()
		res.Status = job.Status()
		if rep := job.Report(); rep != nil {
			data, err := rep.Marshal()
			if err == nil {
				res.Report = data
			}
		}
		res.Error = job.Err()
	}
	n.steals.Add(1)
	ctx, cancel := context.WithTimeout(context.Background(), n.cfg.controlTimeout())
	defer cancel()
	if err := n.postControl(ctx, victim, "/v1/cluster/stolen", res); err != nil {
		n.logf("cluster: returning stolen job %s to %s: %v", sj.ID, victim, err)
	}
}

// postControlDecode is postControl plus a decoded JSON response.
func (n *Node) postControlDecode(ctx context.Context, peer, path string, v, out any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := n.control.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("%s%s: %s", peer, path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
