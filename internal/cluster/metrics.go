package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Cluster-wide metric aggregation: /v1/cluster/metrics fans into
// every member's /metrics, sums samples with identical name+labels,
// and emits one exposition — counters add, histogram bucket counts
// add, and per-node reachability comes along as
// phaged_cluster_node_up{node="..."} rows. Gauges add too (a summed
// gauge like phaged_jobs_queued reads as the cluster total, which is
// what a dashboard wants for queue depth).

func (n *Node) handleClusterMetrics(w http.ResponseWriter, r *http.Request) {
	n.mu.Lock()
	members := n.ring.Members()
	self := n.self
	draining := n.draining
	n.mu.Unlock()
	if draining || len(members) == 0 {
		// A draining node left the ring but must still answer: report
		// over itself plus its last-known peers.
		members = append([]string{self}, n.peers()...)
		sort.Strings(members)
	}

	agg := map[string]float64{}
	up := map[string]bool{}
	for _, m := range members {
		text, err := n.fetchMetrics(r.Context(), m)
		if err != nil {
			n.logf("cluster: metrics from %s: %v", m, err)
			continue
		}
		up[m] = true
		for _, line := range strings.Split(text, "\n") {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			cut := strings.LastIndexByte(line, ' ')
			if cut <= 0 {
				continue
			}
			val, err := strconv.ParseFloat(line[cut+1:], 64)
			if err != nil {
				continue
			}
			agg[line[:cut]] += val
		}
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	for _, m := range members {
		fmt.Fprintf(w, "phaged_cluster_node_up{node=%q} %d\n", m, boolInt(up[m]))
	}
	keys := make([]string, 0, len(agg))
	for k := range agg {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s %s\n", k, strconv.FormatFloat(agg[k], 'g', -1, 64))
	}
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// fetchMetrics reads one member's /metrics exposition text.
func (n *Node) fetchMetrics(ctx context.Context, member string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, member+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := n.control.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("%s/metrics: %s", member, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	return string(body), nil
}
