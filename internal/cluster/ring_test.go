package cluster

import (
	"fmt"
	"math"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("content-key-%04d", i)
	}
	return keys
}

// TestRingDeterministic pins that ownership is a pure function of
// (key, member set): member order at construction is irrelevant, and
// rebuilding the ring reproduces the identical assignment.
func TestRingDeterministic(t *testing.T) {
	members := []string{"http://c:1", "http://a:1", "http://b:1"}
	permuted := []string{"http://b:1", "http://c:1", "http://a:1", "http://a:1"}
	a := NewRing(members, 0)
	b := NewRing(permuted, 0) // different order, one duplicate
	c := NewRing(members, 0)  // plain rebuild
	for _, key := range ringKeys(2000) {
		if a.Owner(key) != b.Owner(key) || a.Owner(key) != c.Owner(key) {
			t.Fatalf("owner of %q differs across equivalent rings: %q / %q / %q",
				key, a.Owner(key), b.Owner(key), c.Owner(key))
		}
	}
}

// TestRingBalance checks each member's key-space share: fractions sum
// to one and every member holds a non-degenerate slice.
func TestRingBalance(t *testing.T) {
	members := []string{"http://a:1", "http://b:1", "http://c:1"}
	r := NewRing(members, 0)
	var sum float64
	for _, m := range members {
		f := r.Fraction(m)
		if f < 0.05 || f > 0.75 {
			t.Errorf("Fraction(%s) = %f: degenerate share for 3 members", m, f)
		}
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("fractions sum to %f, want 1", sum)
	}
	if f := r.Fraction("http://nobody:1"); f != 0 {
		t.Fatalf("Fraction of a non-member = %f, want 0", f)
	}

	// Observed ownership over many keys must track the arc fractions.
	keys := ringKeys(20000)
	counts := map[string]int{}
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	for _, m := range members {
		got := float64(counts[m]) / float64(len(keys))
		if math.Abs(got-r.Fraction(m)) > 0.05 {
			t.Errorf("%s owns %.3f of sampled keys but %.3f of the ring", m, got, r.Fraction(m))
		}
	}
}

// TestRingRemovalMovesOnlyOwnedKeys pins the consistent-hashing
// property the drain handoff depends on: removing one member moves
// exactly the keys it owned — every other key keeps its owner — and
// the moved fraction is about 1/n.
func TestRingRemovalMovesOnlyOwnedKeys(t *testing.T) {
	members := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	before := NewRing(members, 0)
	after := NewRing(members[:3], 0) // d removed
	keys := ringKeys(20000)
	moved := 0
	for _, k := range keys {
		was, is := before.Owner(k), after.Owner(k)
		if was != "http://d:1" {
			if was != is {
				t.Fatalf("key %q moved %q -> %q although its owner never left", k, was, is)
			}
			continue
		}
		if is == "http://d:1" {
			t.Fatalf("key %q still owned by the removed member", k)
		}
		moved++
	}
	frac := float64(moved) / float64(len(keys))
	if math.Abs(frac-before.Fraction("http://d:1")) > 0.05 {
		t.Fatalf("removal moved %.3f of keys, expected the member's share %.3f",
			frac, before.Fraction("http://d:1"))
	}
}

// TestRingAdditionTakesOnlyItsShare is the join-side mirror: a new
// member takes keys only for itself, never reshuffling keys between
// existing members.
func TestRingAdditionTakesOnlyItsShare(t *testing.T) {
	before := NewRing([]string{"http://a:1", "http://b:1"}, 0)
	after := NewRing([]string{"http://a:1", "http://b:1", "http://c:1"}, 0)
	for _, k := range ringKeys(20000) {
		was, is := before.Owner(k), after.Owner(k)
		if is != was && is != "http://c:1" {
			t.Fatalf("key %q reshuffled %q -> %q by an unrelated join", k, was, is)
		}
	}
}

// TestRingEdgeCases covers the degenerate rings the cluster code must
// survive: no members, one member.
func TestRingEdgeCases(t *testing.T) {
	if owner := NewRing(nil, 0).Owner("k"); owner != "" {
		t.Fatalf("empty ring owner = %q, want empty", owner)
	}
	var nilRing *Ring
	if owner := nilRing.Owner("k"); owner != "" {
		t.Fatalf("nil ring owner = %q, want empty", owner)
	}
	solo := NewRing([]string{"http://a:1"}, 0)
	if owner := solo.Owner("k"); owner != "http://a:1" {
		t.Fatalf("solo ring owner = %q", owner)
	}
	if f := solo.Fraction("http://a:1"); math.Abs(f-1) > 1e-9 {
		t.Fatalf("solo member fraction = %f, want 1", f)
	}
}
