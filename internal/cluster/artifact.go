package cluster

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"codephage/internal/corpus"
)

// Corpus artifact replication: the ring owner of artifactKey is the
// leader — it builds (or already holds) the donor index and its
// winnowing fingerprint sidecar, and serves both as one
// content-addressed bundle. Followers pull the bundle, verify its
// digest, and hot-swap it into their selector without restart, which
// also persists it through the selector's fsatomic-backed Save path.
// Replication is a warm-start and consistency optimization, never a
// correctness requirement: index building is deterministic, so a
// follower that never pulls builds the identical index locally.

// artifactKey elects the bundle leader through the same ring that
// routes jobs.
const artifactKey = "corpus/artifact/v1"

// artifactBundle is the wire form: both payloads as raw bytes so the
// digest is computed over exactly what travels.
type artifactBundle struct {
	Digest       string          `json:"digest"`
	Index        json.RawMessage `json:"index"`
	Fingerprints json.RawMessage `json:"fingerprints"`
}

func bundleDigest(index, fingerprints []byte) string {
	h := sha256.New()
	h.Write(index)
	h.Write([]byte{0})
	h.Write(fingerprints)
	return hex.EncodeToString(h.Sum(nil))
}

// handleArtifact serves this node's corpus bundle (building the index
// on first access, exactly like /corpus does).
func (n *Node) handleArtifact(w http.ResponseWriter, _ *http.Request) {
	ix, err := n.srv.Corpus().Index()
	if err != nil {
		n.writeError(w, http.StatusInternalServerError, err)
		return
	}
	fp := ix.Fingerprints()
	if fp == nil {
		// The sidecar is not attached when the pre-filter is disabled;
		// winnow one for the bundle so followers always get both halves.
		fp = corpus.BuildFingerprints(ix)
	}
	ixData, err := json.Marshal(ix)
	if err != nil {
		n.writeError(w, http.StatusInternalServerError, err)
		return
	}
	fpData, err := json.Marshal(fp)
	if err != nil {
		n.writeError(w, http.StatusInternalServerError, err)
		return
	}
	n.writeJSON(w, http.StatusOK, artifactBundle{
		Digest:       bundleDigest(ixData, fpData),
		Index:        ixData,
		Fingerprints: fpData,
	})
}

// PullArtifact fetches the corpus bundle from the ring leader,
// verifies its digest, and hot-swaps it into the local selector. On
// the leader itself it just ensures the index is built. Returns the
// installed (or built) bundle digest.
func (n *Node) PullArtifact(ctx context.Context) (string, error) {
	leader := n.ownerFor(artifactKey)
	self := n.selfURL()
	if leader == "" || leader == self {
		ix, err := n.srv.Corpus().Index()
		if err != nil {
			return "", err
		}
		ixData, err := json.Marshal(ix)
		if err != nil {
			return "", err
		}
		fp := ix.Fingerprints()
		if fp == nil {
			fp = corpus.BuildFingerprints(ix)
		}
		fpData, err := json.Marshal(fp)
		if err != nil {
			return "", err
		}
		return bundleDigest(ixData, fpData), nil
	}

	req, err := http.NewRequestWithContext(ctx, http.MethodGet, leader+"/v1/cluster/artifact", nil)
	if err != nil {
		return "", err
	}
	// The bundle can be large and its build (on the leader's first
	// access) slow; ride the unbounded client under ctx.
	resp, err := n.long.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("%s/v1/cluster/artifact: %s", leader, resp.Status)
	}
	var bundle artifactBundle
	if err := json.NewDecoder(resp.Body).Decode(&bundle); err != nil {
		return "", fmt.Errorf("decoding artifact bundle: %w", err)
	}
	if got := bundleDigest(bundle.Index, bundle.Fingerprints); got != bundle.Digest {
		return "", fmt.Errorf("artifact bundle digest mismatch: header %s, body %s", bundle.Digest, got)
	}
	ix, err := corpus.Decode(bundle.Index)
	if err != nil {
		return "", fmt.Errorf("decoding replicated index: %w", err)
	}
	fp, err := corpus.DecodeFingerprints(bundle.Fingerprints)
	if err != nil {
		return "", fmt.Errorf("decoding replicated fingerprints: %w", err)
	}
	if err := n.srv.Corpus().Install(ix, fp); err != nil {
		return "", err
	}
	n.artifactPulls.Add(1)
	n.logf("cluster: installed corpus artifact %s from %s (%d signatures)",
		bundle.Digest[:12], leader, len(ix.Signatures))
	return bundle.Digest, nil
}

// pullArtifactAtBoot retries the boot-time pull a few times (the
// leader may still be binding its listener), then gives up: the local
// lazy build produces the identical index anyway.
func (n *Node) pullArtifactAtBoot() {
	for attempt := 0; attempt < 5; attempt++ {
		select {
		case <-n.stopAux:
			return
		default:
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
		_, err := n.PullArtifact(ctx)
		cancel()
		if err == nil {
			return
		}
		n.logf("cluster: boot artifact pull (attempt %d): %v", attempt+1, err)
		select {
		case <-n.stopAux:
			return
		case <-time.After(2 * time.Second):
		}
	}
}
